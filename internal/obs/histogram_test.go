package obs

import (
	"math"
	"testing"
	"time"
)

// TestHistogramBucketing pins the bucket-placement rules: inclusive
// upper bounds, underflow into the first bucket, overflow into the
// implicit +Inf bucket.
func TestHistogramBucketing(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name   string
		value  float64
		bucket int
	}{
		{"underflow lands in first bucket", 0.5, 0},
		{"zero lands in first bucket", 0, 0},
		{"exactly on a bound is inclusive", 1, 0},
		{"between bounds", 1.5, 1},
		{"exactly on the second bound", 2, 1},
		{"top finite bucket", 3.9, 2},
		{"exactly on the last bound", 4, 2},
		{"overflow", 4.0001, 3},
		{"far overflow", 1e9, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(bounds)
			h.Observe(tc.value)
			snap := h.Snapshot()
			if got := len(snap.Counts); got != len(bounds)+1 {
				t.Fatalf("len(Counts) = %d, want %d", got, len(bounds)+1)
			}
			for i, c := range snap.Counts {
				want := int64(0)
				if i == tc.bucket {
					want = 1
				}
				if c != want {
					t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.value, i, c, want)
				}
			}
			if snap.Count != 1 || snap.Sum != tc.value {
				t.Errorf("Observe(%v): count=%d sum=%v", tc.value, snap.Count, snap.Sum)
			}
		})
	}
}

// TestHistogramUnsortedBounds verifies construction sorts the bounds,
// so callers may list buckets in any order.
func TestHistogramUnsortedBounds(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2})
	h.Observe(1.5)
	snap := h.Snapshot()
	want := []float64{1, 2, 4}
	for i, b := range snap.Bounds {
		if b != want[i] {
			t.Fatalf("Bounds = %v, want %v", snap.Bounds, want)
		}
	}
	if snap.Counts[1] != 1 {
		t.Errorf("Observe(1.5) into unsorted bounds: counts = %v, want bucket 1", snap.Counts)
	}
}

// TestHistogramZeroObservations locks the empty-snapshot contract:
// zero count, zero sum, NaN mean and quantiles.
func TestHistogramZeroObservations(t *testing.T) {
	h := newHistogram(nil)
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 {
		t.Fatalf("empty snapshot: count=%d sum=%v", snap.Count, snap.Sum)
	}
	if !math.IsNaN(snap.Mean()) {
		t.Errorf("Mean of empty = %v, want NaN", snap.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if !math.IsNaN(snap.Quantile(q)) {
			t.Errorf("Quantile(%v) of empty = %v, want NaN", q, snap.Quantile(q))
		}
	}
}

// TestHistogramQuantileErrorBound exercises the estimator's one
// guarantee: the estimate never leaves the bucket holding the true
// quantile, so its error is bounded by that bucket's width.
func TestHistogramQuantileErrorBound(t *testing.T) {
	bounds := []float64{1, 2, 3, 4, 5}
	h := newHistogram(bounds)
	// 1000 uniform observations on (0, 5): true q-quantile = 5q.
	n := 1000
	for i := 0; i < n; i++ {
		h.Observe(5 * (float64(i) + 0.5) / float64(n))
	}
	snap := h.Snapshot()
	const width = 1.0 // every bucket spans 1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95, 0.99} {
		truth := 5 * q
		got := snap.Quantile(q)
		if math.Abs(got-truth) > width {
			t.Errorf("Quantile(%v) = %v, want within %v of %v", q, got, width, truth)
		}
	}
}

// TestHistogramQuantileEdges covers the boundary behaviors: clamped q,
// single observation, and all-overflow populations.
func TestHistogramQuantileEdges(t *testing.T) {
	t.Run("q is clamped to [0,1]", func(t *testing.T) {
		h := newHistogram([]float64{1, 2})
		h.Observe(0.5)
		h.Observe(1.5)
		lo, hi := h.Snapshot().Quantile(-3), h.Snapshot().Quantile(42)
		if lo < 0 || lo > 1 {
			t.Errorf("Quantile(-3) = %v, want within the first bucket", lo)
		}
		if hi < 1 || hi > 2 {
			t.Errorf("Quantile(42) = %v, want within the last populated bucket", hi)
		}
	})
	t.Run("single observation", func(t *testing.T) {
		h := newHistogram([]float64{1, 2})
		h.Observe(1.5)
		got := h.Snapshot().Quantile(0.5)
		if got < 1 || got > 2 {
			t.Errorf("Quantile(0.5) = %v, want within (1, 2]", got)
		}
	})
	t.Run("all observations overflow", func(t *testing.T) {
		h := newHistogram([]float64{1, 2})
		for i := 0; i < 10; i++ {
			h.Observe(100)
		}
		// The overflow bucket has no upper bound; the estimator reports
		// the largest finite bound rather than +Inf.
		if got := h.Snapshot().Quantile(0.5); got != 2 {
			t.Errorf("Quantile(0.5) with overflow population = %v, want 2", got)
		}
	})
}

// TestHistogramDefaultBucketResolution pins the reason DefBuckets
// extends below a millisecond: with a 5ms first bucket, every sub-5ms
// stage reported the identical interpolated p50/p95 (2.5ms/4.75ms) in
// BENCH_graphsig.json even when true per-unit costs differed by >100x.
// Each case observes a constant population and requires the quantile
// estimate to land inside the bucket actually holding the value, so
// populations at different scales are distinguishable.
func TestHistogramDefaultBucketResolution(t *testing.T) {
	cases := []struct {
		name   string
		value  float64 // constant population
		q      float64
		lo, hi float64 // bucket that must hold the estimate (lo exclusive, hi inclusive)
	}{
		{"80µs stage p50", 0.00008, 0.5, 0.00005, 0.0001},
		{"80µs stage p95", 0.00008, 0.95, 0.00005, 0.0001},
		{"300µs stage p50", 0.0003, 0.5, 0.00025, 0.0005},
		{"2ms stage p50", 0.002, 0.5, 0.001, 0.0025},
		{"2ms stage p95", 0.002, 0.95, 0.001, 0.0025},
		{"30ms stage p50", 0.03, 0.5, 0.025, 0.05},
		{"700ms stage p50", 0.7, 0.5, 0.5, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(DefBuckets)
			for i := 0; i < 100; i++ {
				h.Observe(tc.value)
			}
			got := h.Snapshot().Quantile(tc.q)
			if got <= tc.lo || got > tc.hi {
				t.Errorf("Quantile(%v) over 100×%vs = %v, want within (%v, %v]",
					tc.q, tc.value, got, tc.lo, tc.hi)
			}
		})
	}

	// The original failure mode, directly: stages at 80µs and 2ms per
	// unit must not report the same p50.
	fast, slow := newHistogram(DefBuckets), newHistogram(DefBuckets)
	for i := 0; i < 100; i++ {
		fast.Observe(0.00008)
		slow.Observe(0.002)
	}
	fp, sp := fast.Snapshot().Quantile(0.5), slow.Snapshot().Quantile(0.5)
	if sp < 5*fp {
		t.Errorf("p50 of 2ms population (%v) not clearly above p50 of 80µs population (%v)", sp, fp)
	}
}

func TestHistogramMeanAndDuration(t *testing.T) {
	h := newHistogram(DefBuckets)
	h.ObserveDuration(100 * time.Millisecond)
	h.ObserveDuration(300 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count = %d, want 2", snap.Count)
	}
	if math.Abs(snap.Sum-0.4) > 1e-9 || math.Abs(snap.Mean()-0.2) > 1e-9 {
		t.Errorf("sum = %v mean = %v, want 0.4 / 0.2", snap.Sum, snap.Mean())
	}
}

// TestHistogramNil locks the nil-receiver contract the call sites rely
// on: every method is a no-op, every read is a zero value.
func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 {
		t.Errorf("nil Count = %d", h.Count())
	}
	snap := h.Snapshot()
	if snap.Count != 0 || len(snap.Counts) != 0 {
		t.Errorf("nil Snapshot = %+v", snap)
	}
}
