package obs

// Canonical metric names. The scheme is graphsig_<subsystem>_<what>_<unit>:
// counters end in _total, gauges name a level, histograms name a unit
// (_seconds). Labels are closed sets — stage names, runctl reasons,
// normalized HTTP routes, job states — never request data, so series
// cardinality is bounded by construction.
const (
	// Per-stage mining pipeline metrics (label: stage; recorded by
	// runctl stage spans). Every span ends exactly once, as completed or
	// degraded, so for each stage
	//
	//	started_total == completed_total + degraded_total
	//
	// holds at every quiescent point — the balance the fault-injection
	// suite locks down.
	MStageStarted   = "graphsig_stage_started_total"
	MStageCompleted = "graphsig_stage_completed_total"
	MStageDegraded  = "graphsig_stage_degraded_total"
	// MStageUnits counts completed work units in the stage's own scale
	// (vectors, groups, patterns, graphs).
	MStageUnits = "graphsig_stage_units_total"
	// MStageDuration is the per-stage wall-time histogram, in seconds.
	MStageDuration = "graphsig_stage_duration_seconds"

	// MDegradations counts cut-short runs by reason (label: reason).
	// Incremented exactly once per run, by the checkpoint that wins the
	// first-cause CAS in runctl.
	MDegradations = "graphsig_degradations_total"
	// MPanics counts isolated worker panics by stage (label: stage).
	MPanics = "graphsig_panics_total"

	// Shared window cache (internal/core): one CutGraph per distinct
	// (graphID, nodeID, radius), however many vector groups reference it.
	MWindowCacheHits   = "graphsig_window_cache_hits_total"
	MWindowCacheMisses = "graphsig_window_cache_misses_total"

	// VF2 fast-reject pre-filter (internal/isomorph; label: site —
	// "verify" for graph-space support counting, "maximal" for the
	// miners' containment passes, "gindex" for feature-index builds).
	// A reject is a candidate dismissed on label/degree summaries alone,
	// without entering VF2 search; a pass fell through to VF2.
	MPrefilterRejects = "graphsig_vf2_prefilter_rejects_total"
	MPrefilterPasses  = "graphsig_vf2_prefilter_passes_total"

	// Closed-pattern mining (internal/gspan, internal/fsg; label: miner
	// — "gspan" or "fsg").
	// MClosedPrunes counts frequent patterns suppressed at emission
	// because a one-edge extension preserves their full support set
	// (the CloseGraph non-closed condition): each is one pattern the
	// maximality sweep never has to look at.
	MClosedPrunes = "graphsig_closed_prunes_total"
	// MEquivOccurrences counts equivalent-occurrence early terminations:
	// DFS subtrees abandoned wholesale because every embedding of the
	// subtree root extends by the same support-preserving internal edge,
	// so no descendant can be closed.
	MEquivOccurrences = "graphsig_equiv_occurrence_hits_total"
	// MMaximalPairs counts candidate containment pairs examined by the
	// miners' maximality sweeps after the cheap size screen — the O(n²)
	// cost driver the closed-pattern mine is there to shrink. Each pair
	// then either fast-rejects (TID subset or summary, MPrefilterRejects
	// site="maximal") or reaches VF2 (MPrefilterPasses).
	MMaximalPairs = "graphsig_maximal_sweep_pairs_total"

	// Jobs subsystem (internal/jobs).
	MJobsWorkers     = "graphsig_jobs_workers"
	MJobsBusy        = "graphsig_jobs_busy_workers"
	MJobsQueueDepth  = "graphsig_jobs_queue_depth"
	MJobsQueueCap    = "graphsig_jobs_queue_capacity"
	MJobsExecutions  = "graphsig_jobs_executions_total"
	MJobsCoalesced   = "graphsig_jobs_coalesced_total"
	MJobsCacheHits   = "graphsig_jobs_cache_hits_total"
	MJobsCacheMisses = "graphsig_jobs_cache_misses_total"
	MJobsRejected    = "graphsig_jobs_rejected_total"
	MJobsCacheSize   = "graphsig_jobs_cache_entries"
	// MJobsFinished counts terminal jobs by outcome (label: state).
	MJobsFinished = "graphsig_jobs_finished_total"
	// MJobsRunSeconds is the executed-job wall-time histogram.
	MJobsRunSeconds = "graphsig_jobs_run_seconds"
	// MJobsShed counts submissions refused by deadline-aware admission
	// control: the expected queue wait already exceeded the client's
	// completion deadline, so running the job could only waste a worker.
	MJobsShed = "graphsig_jobs_shed_total"
	// MJobsRetries counts re-enqueues of transiently failed jobs.
	MJobsRetries = "graphsig_jobs_retries_total"
	// MJobsReplayed counts jobs reconstructed from the write-ahead
	// journal at startup (label: outcome — "requeued" for incomplete
	// jobs re-entering the queue, "finished" for terminal jobs surfaced
	// with their persisted results, "dropped" for records that could not
	// be restored).
	MJobsReplayed = "graphsig_jobs_replayed_total"
	// MJobsStalled counts jobs the stall watchdog canceled because their
	// runctl checkpoints stopped advancing for the configured window.
	MJobsStalled = "graphsig_jobs_stalled_total"

	// Durability layer (internal/journal, runctl checkpoint sink,
	// core resume).
	// MJournalRecords counts appended journal records by type.
	MJournalRecords = "graphsig_journal_records_total"
	// MJournalTruncations counts corrupt-tail repairs on journal open:
	// each is one torn or CRC-failing suffix cut back to the last intact
	// record boundary.
	MJournalTruncations = "graphsig_journal_tail_truncations_total"
	// MJournalErrors counts journal append/sync failures; the serving
	// layer degrades to in-memory operation instead of failing the job.
	MJournalErrors = "graphsig_journal_errors_total"
	// MCheckpointsEmitted counts resumable snapshots handed to a
	// runctl checkpoint sink.
	MCheckpointsEmitted = "graphsig_checkpoints_emitted_total"
	// MResumeRejected counts resume states Mine refused (key or group
	// identity mismatch); the run falls back to mining from scratch.
	MResumeRejected = "graphsig_resume_rejected_total"

	// HTTP surface (internal/server; labels: route, code).
	MHTTPRequests = "graphsig_http_requests_total"
	MHTTPDuration = "graphsig_http_request_duration_seconds"
	MHTTPInFlight = "graphsig_http_in_flight"

	// Served database shape (internal/server).
	MDBGraphs = "graphsig_db_graphs"

	// Persistent segment store (internal/store).
	// MStoreSegmentLoads counts segments decoded from disk;
	// MStoreSegmentCacheHits/Misses track the Reader's decoded-segment
	// LRU, so hits+misses is total segment lookups and loads ≤ misses
	// (concurrent decoders of the same segment keep one copy).
	MStoreSegmentLoads       = "graphsig_store_segment_loads_total"
	MStoreSegmentCacheHits   = "graphsig_store_segment_cache_hits_total"
	MStoreSegmentCacheMisses = "graphsig_store_segment_cache_misses_total"
	// MStoreGeneration is the manifest generation the reader serves;
	// it moves only when an append is picked up.
	MStoreGeneration = "graphsig_store_generation"
	MStoreSegments   = "graphsig_store_segments"

	// Scatter-gather sharded mining (internal/shard; label: shard).
	// MShardGraphs gauges each shard's member count. The vector-cache
	// counters track the coordinator's content-keyed per-shard RWR
	// vector cache — after an incremental append, unchanged shards hit.
	MShardGraphs            = "graphsig_shard_graphs"
	MShardVectorCacheHits   = "graphsig_shard_vector_cache_hits_total"
	MShardVectorCacheMisses = "graphsig_shard_vector_cache_misses_total"
	// MShardMines counts scatter-gather coordinator runs.
	MShardMines = "graphsig_shard_mines_total"
)
