// Package obs is the operational observability layer: an atomic
// counter/gauge registry plus fixed-bucket latency histograms, exposed
// as Prometheus text (/metrics) and as a JSON snapshot (/debug/vars).
//
// The paper's headline claims are performance curves, and subgraph
// mining cost is wildly input-dependent — so the running system must
// report where time and work actually go, per stage, without slowing
// the stages down. The design rules follow from that:
//
//   - the hot path is lock-free: a Counter or Gauge is one atomic
//     int64, a Histogram observation is two atomic adds plus one CAS
//     loop on the float sum. Registration (the only mutex) happens once
//     per series; hot callers hold onto the returned pointer;
//   - histograms use fixed buckets, not quantile sketches: bucket
//     counts are plain atomics, observations never rebalance shared
//     state, and quantiles are estimated at read time with an error
//     bounded by the width of the bucket the quantile falls in;
//   - everything is nil-receiver safe. A nil *Registry hands out nil
//     metrics whose methods are no-ops, so unmetered runs (a nil
//     Metrics option anywhere in the pipeline) pay a single pointer
//     test per event and need no branches at call sites.
//
// Series are identified Prometheus-style: a base name plus sorted
// key="value" labels, e.g. graphsig_stage_duration_seconds{stage="rwr"}.
// The naming scheme is graphsig_<subsystem>_<what>_<unit>; the canonical
// names live in names.go so producers and consumers cannot drift.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered series for exposition (TYPE lines).
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic int64. A nil *Counter is
// valid: every method is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are dropped: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic int64 that can move both ways. A nil *Gauge is
// valid: every method is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is one registered (base name, label block) pair.
type series struct {
	base   string
	labels string // rendered inner label block, "" when unlabeled
	full   string
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry owns the full series set. Create one with NewRegistry and
// share it by pointer; all methods are safe for concurrent use, and a
// nil *Registry hands out nil (no-op) metrics.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// Counter returns the counter for name plus k,v label pairs, creating
// it on first use. Re-registering the same series with a different kind
// panics: series identity is a program invariant, not runtime input.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.lookup(name, KindCounter, nil, labels)
	if s == nil {
		return nil
	}
	return s.counter
}

// Gauge returns the gauge for name plus k,v label pairs, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.lookup(name, KindGauge, nil, labels)
	if s == nil {
		return nil
	}
	return s.gauge
}

// Histogram returns the histogram for name plus k,v label pairs,
// creating it on first use with the given bucket upper bounds (nil =
// DefBuckets). Later lookups of an existing series ignore the bucket
// argument.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	s := r.lookup(name, KindHistogram, buckets, labels)
	if s == nil {
		return nil
	}
	return s.hist
}

func (r *Registry) lookup(name string, kind Kind, buckets []float64, labels []string) *series {
	if r == nil {
		return nil
	}
	block := labelBlock(labels)
	full := name
	if block != "" {
		full = name + "{" + block + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[full]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %s registered as %s, requested as %s", full, s.kind, kind))
		}
		return s
	}
	s := &series{base: name, labels: block, full: full, kind: kind}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(buckets)
	}
	r.series[full] = s
	return s
}

// SeriesName renders the full series identifier for a base name plus
// k,v label pairs, exactly as the registry keys it — the lookup key for
// Snapshot maps.
func SeriesName(name string, labels ...string) string {
	block := labelBlock(labels)
	if block == "" {
		return name
	}
	return name + "{" + block + "}"
}

// labelBlock renders k,v pairs sorted by key so the same label set
// always produces the same series, regardless of call-site order.
func labelBlock(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q: want k,v pairs", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sortedSeries snapshots the series list ordered by (base, labels) so
// every exposition is deterministic and families stay contiguous.
func (r *Registry) sortedSeries() []*series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}
