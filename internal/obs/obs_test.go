package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCounterGaugeBasics pins the scalar semantics: counters only go
// up, gauges move both ways.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(5)
	c.Add(-3) // dropped: counters are monotone
	c.Add(0)  // dropped
	if got := c.Value(); got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
	g := r.Gauge("test_level")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
}

// TestNilSafety locks the contract that makes wiring branch-free: a nil
// registry hands out nil metrics, and every method on them is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "k", "v")
	g := r.Gauge("x_level")
	h := r.Histogram("x_seconds", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil metrics: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil metrics accumulated state")
	}
	snap := r.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Error("nil registry snapshot has nil maps; want empty maps (JSON {})")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Errorf("nil registry exposition = %q, want empty", b.String())
	}
}

// TestSeriesIdentity: label order never mints a second series, and
// re-registering under a different kind is a programming error.
func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "b", "1", "a", "2")
	b := r.Counter("x_total", "a", "2", "b", "1")
	if a != b {
		t.Error("label order minted two series")
	}
	a.Inc()
	if got := r.Snapshot().CounterValue("x_total", "a", "2", "b", "1"); got != 1 {
		t.Errorf("CounterValue = %d, want 1", got)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("x_total", "a", "2", "b", "1")
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd label list did not panic")
			}
		}()
		r.Counter("y_total", "only-a-key")
	}()
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values
// survive a SeriesName/splitSeries round trip.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	weird := "a\"b\\c\nd"
	r.Counter("esc_total", "k", weird).Inc()
	snap := r.Snapshot()
	vals := snap.LabelValues("esc_total", "k")
	if len(vals) != 1 || vals[0] != weird {
		t.Errorf("LabelValues round trip = %q, want %q", vals, weird)
	}
	if got := snap.CounterValue("esc_total", "k", weird); got != 1 {
		t.Errorf("CounterValue with escaped label = %d, want 1", got)
	}
}

// TestWritePrometheus pins the exposition format exactly: TYPE lines
// per family, deterministic order, cumulative histogram buckets with
// _sum and _count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("aaa_total", "stage", "rwr").Add(3)
	r.Counter("aaa_total", "stage", "fvmine").Add(1)
	r.Gauge("bbb_level").Set(7)
	h := r.Histogram("ccc_seconds", []float64{0.1, 1}, "route", "/mine")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# TYPE aaa_total counter
aaa_total{stage="fvmine"} 1
aaa_total{stage="rwr"} 3
# TYPE bbb_level gauge
bbb_level 7
# TYPE ccc_seconds histogram
ccc_seconds_bucket{route="/mine",le="0.1"} 1
ccc_seconds_bucket{route="/mine",le="1"} 2
ccc_seconds_bucket{route="/mine",le="+Inf"} 3
ccc_seconds_sum{route="/mine"} 2.55
ccc_seconds_count{route="/mine"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotJSONRoundTrip: the /debug/vars payload survives
// marshal/unmarshal with values intact — what the handler test scrapes
// is exactly what the registry holds.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "k", "v").Add(4)
	r.Gauge("g_level").Set(-2)
	r.Histogram("h_seconds", []float64{1}, "k", "v").Observe(0.5)

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.CounterValue("c_total", "k", "v"); got != 4 {
		t.Errorf("counter after round trip = %d, want 4", got)
	}
	if got := back.GaugeValue("g_level"); got != -2 {
		t.Errorf("gauge after round trip = %d, want -2", got)
	}
	hs, ok := back.HistogramValue("h_seconds", "k", "v")
	if !ok || hs.Count != 1 || hs.Sum != 0.5 {
		t.Errorf("histogram after round trip = %+v ok=%v", hs, ok)
	}
}

// TestWriteStageTable: stages render in pipeline order with their
// counts, and an empty snapshot says so instead of printing a header.
func TestWriteStageTable(t *testing.T) {
	r := NewRegistry()
	for _, st := range []string{"verify", "rwr", "features"} {
		r.Counter(MStageStarted, "stage", st).Inc()
		r.Counter(MStageCompleted, "stage", st).Inc()
		r.Counter(MStageUnits, "stage", st).Add(10)
		r.Histogram(MStageDuration, DefBuckets, "stage", st).Observe(0.02)
	}
	var b strings.Builder
	WriteStageTable(&b, r.Snapshot())
	out := b.String()
	iFeat := strings.Index(out, "features")
	iRWR := strings.Index(out, "rwr")
	iVerify := strings.Index(out, "verify")
	if iFeat < 0 || iRWR < 0 || iVerify < 0 {
		t.Fatalf("missing stage rows:\n%s", out)
	}
	if !(iFeat < iRWR && iRWR < iVerify) {
		t.Errorf("stages out of pipeline order:\n%s", out)
	}
	if !strings.Contains(out, "started") || !strings.Contains(out, "p95") {
		t.Errorf("missing headers:\n%s", out)
	}

	var empty strings.Builder
	WriteStageTable(&empty, NewRegistry().Snapshot())
	if !strings.Contains(empty.String(), "no stage metrics") {
		t.Errorf("empty snapshot table = %q", empty.String())
	}
}
