package obs

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// writers bumping counters/gauges/histograms, creators minting new
// series, readers snapshotting and rendering — and checks the snapshot
// consistency contract: per-series counters are monotone across
// successive snapshots (no torn reads), histogram bucket totals never
// trail the histogram count, and after the join every total is exact.
// Run under -race (make race) this also proves the hot path is
// data-race-free.
func TestRegistryConcurrency(t *testing.T) {
	const (
		writers = 8
		iters   = 2000
	)
	r := NewRegistry()
	ctr := r.Counter("hammer_total")
	gauge := r.Gauge("hammer_level")
	hist := r.Histogram("hammer_seconds", []float64{0.25, 0.5, 0.75}, "k", "v")

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	// Snapshot reader: monotonicity + histogram internal consistency.
	go func() {
		defer readers.Done()
		var lastCtr, lastHist int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			c := snap.CounterValue("hammer_total")
			if c < lastCtr {
				t.Errorf("counter went backwards: %d -> %d", lastCtr, c)
				return
			}
			lastCtr = c
			if hs, ok := snap.HistogramValue("hammer_seconds", "k", "v"); ok {
				if hs.Count < lastHist {
					t.Errorf("histogram count went backwards: %d -> %d", lastHist, hs.Count)
					return
				}
				lastHist = hs.Count
				var total int64
				for _, n := range hs.Counts {
					total += n
				}
				if total < hs.Count {
					t.Errorf("torn histogram snapshot: bucket total %d < count %d", total, hs.Count)
					return
				}
			}
		}
	}()
	// Exposition reader: rendering while series are minted must not race.
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.WritePrometheus(io.Discard)
			}
		}
	}()

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			// Each writer also keeps re-looking-up a labeled series, so
			// registration races with reads and with other registrations.
			lbl := []string{"writer", string(rune('a' + w))}
			for i := 0; i < iters; i++ {
				ctr.Inc()
				gauge.Add(1)
				hist.Observe(float64(i%4+1) / 4.0)
				r.Counter("hammer_labeled_total", lbl...).Inc()
				gauge.Add(-1)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	snap := r.Snapshot()
	if got := snap.CounterValue("hammer_total"); got != writers*iters {
		t.Errorf("counter = %d, want %d", got, writers*iters)
	}
	if got := snap.GaugeValue("hammer_level"); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	hs, ok := snap.HistogramValue("hammer_seconds", "k", "v")
	if !ok || hs.Count != writers*iters {
		t.Fatalf("histogram count = %d ok=%v, want %d", hs.Count, ok, writers*iters)
	}
	var total int64
	for _, n := range hs.Counts {
		total += n
	}
	if total != writers*iters {
		t.Errorf("bucket total = %d, want %d", total, writers*iters)
	}
	// Observations cycle .25, .5, .75, 1 with inclusive bounds
	// {.25, .5, .75}: exactly a quarter of them overflow.
	if over := hs.Counts[len(hs.Counts)-1]; over != writers*iters/4 {
		t.Errorf("overflow bucket = %d, want %d", over, writers*iters/4)
	}
	for w := 0; w < writers; w++ {
		lbl := []string{"writer", string(rune('a' + w))}
		if got := snap.CounterValue("hammer_labeled_total", lbl...); got != iters {
			t.Errorf("labeled counter %d = %d, want %d", w, got, iters)
		}
	}
}
