package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"graphsig/internal/textchart"
)

// pipelineOrder fixes the display order of the known mining stages so
// the -stats table reads top-to-bottom in execution order. Unknown
// stages (future additions) sort after these, alphabetically. The list
// is duplicated from runctl by name only: obs cannot import runctl
// (runctl records into obs), and a stale entry here degrades to
// alphabetical placement, never to data loss.
var pipelineOrder = map[string]int{
	"features":   0,
	"rwr":        1,
	"fvmine":     2,
	"group":      3,
	"group-mine": 4,
	"verify":     5,
}

// WriteStageTable renders the per-stage mining metrics in snap as an
// aligned table: spans started/completed/degraded, work units, total
// wall time, and the p50/p95 latency estimates. Stages are discovered
// from the snapshot's stage labels, so the table needs no knowledge of
// the pipeline beyond the metric naming scheme.
func WriteStageTable(w io.Writer, snap Snapshot) {
	stages := snap.LabelValues(MStageStarted, "stage")
	if len(stages) == 0 {
		fmt.Fprintln(w, "no stage metrics recorded")
		return
	}
	sort.Slice(stages, func(i, j int) bool {
		oi, iok := pipelineOrder[stages[i]]
		oj, jok := pipelineOrder[stages[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		}
		return stages[i] < stages[j]
	})
	rows := make([][]string, 0, len(stages))
	for _, st := range stages {
		row := []string{
			st,
			fmt.Sprintf("%d", snap.CounterValue(MStageStarted, "stage", st)),
			fmt.Sprintf("%d", snap.CounterValue(MStageCompleted, "stage", st)),
			fmt.Sprintf("%d", snap.CounterValue(MStageDegraded, "stage", st)),
			fmt.Sprintf("%d", snap.CounterValue(MStageUnits, "stage", st)),
			"-", "-", "-",
		}
		if h, ok := snap.HistogramValue(MStageDuration, "stage", st); ok && h.Count > 0 {
			row[5] = formatSeconds(h.Sum)
			row[6] = formatSeconds(h.Quantile(0.5))
			row[7] = formatSeconds(h.Quantile(0.95))
		}
		rows = append(rows, row)
	}
	textchart.Table(w, "per-stage mining metrics",
		[]string{"stage", "started", "completed", "degraded", "units", "time", "p50", "p95"}, rows)
}

// formatSeconds renders a duration in seconds compactly (1.234s, 56ms).
func formatSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Millisecond).String()
	}
	return d.Round(time.Microsecond).String()
}
