// Package runctl is the shared run controller of the mining pipeline:
// one object carrying cancellation (a context), a wall-clock deadline,
// per-stage work budgets, and a degradation report that records which
// stage was cut short, why, and how much work it completed.
//
// Subgraph mining is exponential in the worst case — the paper's own
// baselines "did not finish in >10 hours" — so every stage must be
// interruptible and must degrade to a valid partial result. Before this
// package, four packages polled a bare Deadline time.Time with divergent
// granularity; now they all observe one checkpoint primitive:
//
//	ctl := runctl.New(runctl.Options{Context: ctx, Deadline: d})
//	cp := ctl.Checkpoint(runctl.StageFVMine)
//	for ... {
//	    if err := cp.Step(); err != nil { return partial(err) }
//	}
//
// Step is amortized: it bumps a goroutine-local counter and consults the
// shared state (context, deadline, budget, test hook) only every
// CheckInterval steps, so the hot loops pay one increment per step. A
// Checkpoint is goroutine-local; the Controller behind it is shared and
// safe for concurrent use. All Controller and Checkpoint methods are
// nil-receiver safe, so unconstrained runs pass nil and pay nothing.
package runctl

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphsig/internal/obs"
)

// Reason classifies why a run was cut short.
type Reason string

const (
	// ReasonDeadline: the wall-clock deadline passed.
	ReasonDeadline Reason = "deadline"
	// ReasonBudget: a stage exhausted its work budget.
	ReasonBudget Reason = "budget"
	// ReasonCancel: the context was canceled (client disconnect, signal,
	// or the fault-injection hook).
	ReasonCancel Reason = "cancel"
	// ReasonPanic: a worker goroutine panicked; the panic was isolated
	// into a stage report instead of crashing the process.
	ReasonPanic Reason = "panic"
)

// Stage names the pipeline stages that observe the controller.
type Stage string

const (
	// StageFeatures is the feature-set construction over the database
	// (§II-B: top atoms plus their pairwise edge types).
	StageFeatures Stage = "features"
	// StageRWR is the region-to-vector transform (Alg 2 lines 3-4).
	StageRWR Stage = "rwr"
	// StageFVMine is closed sub-feature-vector mining (Alg 1).
	StageFVMine Stage = "fvmine"
	// StageGSpan is pattern-growth frequent-subgraph mining.
	StageGSpan Stage = "gspan"
	// StageFSG is apriori-style frequent-subgraph mining.
	StageFSG Stage = "fsg"
	// StageLEAP is discriminative pattern mining.
	StageLEAP Stage = "leap"
	// StageGroup is GraphSig's region-grouping phase: cutting the
	// radius-bounded windows around each vector's supporting nodes.
	StageGroup Stage = "group"
	// StageGroupMine is GraphSig's per-group maximal FSM phase.
	StageGroupMine Stage = "group-mine"
	// StageVF2 is (sub)graph isomorphism search.
	StageVF2 Stage = "vf2"
	// StageVerify is GraphSig's final graph-space support verification.
	StageVerify Stage = "verify"
)

// DefaultCheckInterval is how many local steps a Checkpoint takes
// between consultations of the shared state. 64 keeps the per-step cost
// to one integer increment while bounding deadline overshoot to 64
// units of the stage's cheapest operation.
const DefaultCheckInterval = 64

// Budgets bounds the work each stage family may perform across the
// whole run (zero = unbounded). Budgets are shared: two goroutines
// mining FVMine label groups draw from the same FVMineStates pool.
type Budgets struct {
	// FVMineStates caps FVMine recursion states.
	FVMineStates int64
	// MinerSteps caps frequent-subgraph mining work: gSpan search states
	// plus FSG candidates (and LEAP scoring steps), including the
	// isomorphism checks the miners run internally for support counting
	// and maximality filtering.
	MinerSteps int64
	// VF2Nodes caps isomorphism search-tree nodes spent on graph-space
	// support verification and query-time search. Mining-internal
	// isomorphism work charges MinerSteps instead, so a VF2 budget trip
	// always lands in the verification phase — a deterministic point in
	// the pipeline regardless of Config.Parallelism.
	VF2Nodes int64
}

// Options configures a Controller. The zero value is a controller with
// no constraints (useful as a pure degradation collector).
type Options struct {
	// Context cancels the run when done (nil = context.Background()).
	//graphsiglint:ignore ctxfirst Options is the construction boundary; New consumes the field immediately
	Context context.Context
	// Deadline aborts the run when passed (zero = none).
	Deadline time.Time
	// Budgets bounds per-stage work (zero fields = unbounded).
	Budgets Budgets
	// CheckInterval overrides DefaultCheckInterval (<=0 = default).
	CheckInterval int
	// Hook, when non-nil, is the fault-injection test hook: it is called
	// at every amortized checkpoint with the 1-based checkpoint ordinal
	// and trips cancellation by returning true.
	Hook func(check int64) bool
	// Metrics, when non-nil, receives the run's operational metrics:
	// per-stage span counters and duration histograms (StartStage), the
	// exactly-once degradation counter, and the isolated-panic counter.
	// Nil disables metering with no per-step cost.
	Metrics *obs.Registry
	// CheckpointSink, when non-nil, receives the resumable snapshots the
	// pipeline emits at its durable progress boundaries (core.Mine's
	// group-merge commits). The owner persists them — the jobs layer
	// appends each to its write-ahead journal — so a killed process can
	// restart from the last snapshot instead of from zero. The payload
	// is opaque to runctl; core owns its encoding. Pipelines only build
	// snapshots when a sink is installed, so unattended runs pay nothing.
	CheckpointSink func(payload []byte)
}

// StopError is the structured cause a checkpoint returns once the run
// is cut short. Every later checkpoint returns the same first cause.
type StopError struct {
	Stage  Stage
	Reason Reason
	Detail string
}

func (e *StopError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("runctl: %s stopped: %s", e.Stage, e.Reason)
	}
	return fmt.Sprintf("runctl: %s stopped: %s (%s)", e.Stage, e.Reason, e.Detail)
}

// AsStop unwraps err into a *StopError when it is one.
func AsStop(err error) (*StopError, bool) {
	se, ok := err.(*StopError)
	return se, ok
}

// ReasonOf extracts the stop reason from err ("" for nil or foreign
// errors).
func ReasonOf(err error) Reason {
	if se, ok := err.(*StopError); ok {
		return se.Reason
	}
	return ""
}

// StageReport records one stage's partial completion or failure.
type StageReport struct {
	Stage  Stage  `json:"stage"`
	Reason Reason `json:"reason,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Completed is the work the stage finished before stopping, in the
	// stage's own units (states, candidates, groups, graphs).
	Completed int64 `json:"completed,omitempty"`
	// Planned is the total work the stage intended (0 = unknown).
	Planned int64 `json:"planned,omitempty"`
	// Err carries the panic message and truncated stack for panic
	// reports.
	Err string `json:"err,omitempty"`
}

// Degradation is the trust contract of a partial result: which stage
// stopped first and why, plus per-stage reports of what completed.
// Truncated false means the result is complete.
type Degradation struct {
	Truncated bool          `json:"truncated"`
	Reason    Reason        `json:"reason,omitempty"`
	Stage     Stage         `json:"stage,omitempty"`
	Detail    string        `json:"detail,omitempty"`
	Stages    []StageReport `json:"stages,omitempty"`
}

// String renders the report as one human-readable line.
func (d Degradation) String() string {
	if !d.Truncated {
		return "complete"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "truncated")
	if d.Stage != "" {
		fmt.Fprintf(&b, " at %s", d.Stage)
	}
	if d.Reason != "" {
		fmt.Fprintf(&b, " (%s)", d.Reason)
	}
	if d.Detail != "" {
		fmt.Fprintf(&b, ": %s", d.Detail)
	}
	for _, s := range d.Stages {
		fmt.Fprintf(&b, "; %s", s.Stage)
		if s.Reason != "" {
			fmt.Fprintf(&b, " %s", s.Reason)
		}
		if s.Planned > 0 {
			fmt.Fprintf(&b, " %d/%d done", s.Completed, s.Planned)
		} else if s.Completed > 0 {
			fmt.Fprintf(&b, " %d done", s.Completed)
		}
		if s.Detail != "" {
			fmt.Fprintf(&b, " [%s]", s.Detail)
		}
	}
	return b.String()
}

// Controller is the shared run state. Create one per mining run with
// New and derive one Checkpoint per goroutine per stage. A nil
// *Controller is valid and never stops anything.
type Controller struct {
	//graphsiglint:ignore ctxfirst the Controller IS the run's cancellation carrier; checkpoints poll this ctx
	ctx      context.Context
	deadline time.Time
	budgets  Budgets
	interval int64
	hook     func(int64) bool
	metrics  *obs.Registry
	sink     func([]byte)

	checks    atomic.Int64
	snapshots atomic.Int64
	cause     atomic.Pointer[StopError]

	spentFV    atomic.Int64
	spentMiner atomic.Int64
	spentVF2   atomic.Int64

	mu     sync.Mutex
	stages []StageReport
}

// New returns a Controller for opt.
func New(opt Options) *Controller {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	interval := int64(opt.CheckInterval)
	if interval <= 0 {
		interval = DefaultCheckInterval
	}
	return &Controller{
		ctx:      ctx,
		deadline: opt.Deadline,
		budgets:  opt.Budgets,
		interval: interval,
		hook:     opt.Hook,
		metrics:  opt.Metrics,
		sink:     opt.CheckpointSink,
	}
}

// WantsCheckpoints reports whether a checkpoint sink is installed, so
// pipelines can skip building snapshots nobody will persist. False for
// a nil controller.
func (c *Controller) WantsCheckpoints() bool {
	return c != nil && c.sink != nil
}

// EmitCheckpoint hands one resumable snapshot to the checkpoint sink.
// A nil controller or absent sink drops the payload; a panicking sink
// is contained here (persistence failure must degrade durability, not
// the mine).
func (c *Controller) EmitCheckpoint(payload []byte) {
	if c == nil || c.sink == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			c.Recovered("checkpoint", "checkpoint sink", r)
		}
	}()
	c.sink(payload)
	c.snapshots.Add(1)
	c.metrics.Counter(obs.MCheckpointsEmitted).Inc()
}

// CheckpointsEmitted returns how many snapshots reached the sink (test
// and watchdog observability; zero for a nil controller).
func (c *Controller) CheckpointsEmitted() int64 {
	if c == nil {
		return 0
	}
	return c.snapshots.Load()
}

// Metrics returns the controller's metrics registry (nil when the run
// is unmetered, including for a nil controller).
func (c *Controller) Metrics() *obs.Registry {
	if c == nil {
		return nil
	}
	return c.metrics
}

// FromDeadline adapts the legacy Deadline time.Time option: it returns
// a deadline-only controller, or nil (no control, no overhead) when the
// deadline is zero.
func FromDeadline(d time.Time) *Controller {
	if d.IsZero() {
		return nil
	}
	return New(Options{Deadline: d})
}

// Err returns the stop cause once the run is cut short, else nil.
func (c *Controller) Err() error {
	if c == nil {
		return nil
	}
	if e := c.cause.Load(); e != nil {
		return e
	}
	return nil
}

// Stopped reports whether the run has been cut short.
func (c *Controller) Stopped() bool { return c.Err() != nil }

// Context returns the controller's context (context.Background for a
// nil controller).
func (c *Controller) Context() context.Context {
	if c == nil {
		return context.Background()
	}
	return c.ctx
}

// fail records the first stop cause; later causes are dropped and the
// winner returned, so every checkpoint reports one consistent error.
// The CAS winner — and only the winner — counts the degradation event,
// so MDegradations increments exactly once per cut-short run no matter
// how many goroutines observe the trip.
func (c *Controller) fail(stage Stage, reason Reason, detail string) *StopError {
	e := &StopError{Stage: stage, Reason: reason, Detail: detail}
	if c.cause.CompareAndSwap(nil, e) {
		c.metrics.Counter(obs.MDegradations, "reason", string(reason)).Inc()
		return e
	}
	return c.cause.Load()
}

// Cancel administratively stops the run: the next consultation of
// every live checkpoint returns a cancel StopError, and the pipeline
// unwinds into its partial result. Unlike context cancellation this
// needs no context plumbed at construction time, so owners that decide
// to cancel after the fact (job orchestration, admin endpoints) can.
// The first stop cause wins; Cancel after another stop is a no-op.
func (c *Controller) Cancel(detail string) {
	if c == nil {
		return
	}
	c.fail("", ReasonCancel, detail)
}

// RecordStage appends a stage report to the degradation record.
func (c *Controller) RecordStage(r StageReport) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stages = append(c.stages, r)
	c.mu.Unlock()
}

// RecordStop is RecordStage specialized to "this stage stopped at the
// shared cause after completing this much of its planned work".
func (c *Controller) RecordStop(stage Stage, completed, planned int64, detail string) {
	if c == nil {
		return
	}
	r := StageReport{Stage: stage, Completed: completed, Planned: planned, Detail: detail}
	if e := c.cause.Load(); e != nil {
		r.Reason = e.Reason
	}
	c.RecordStage(r)
}

// maxPanicStack bounds the stack captured into a panic stage report.
const maxPanicStack = 4096

// Recovered converts a recovered panic value into a structured stage
// report. Use it in worker goroutines:
//
//	defer func() {
//	    if r := recover(); r != nil { ctl.Recovered(stage, what, r) }
//	}()
//
// The panic does not stop the rest of the run; it degrades the one
// worker's unit of work and is surfaced in the report.
func (c *Controller) Recovered(stage Stage, what string, r any) {
	if c == nil {
		return
	}
	c.metrics.Counter(obs.MPanics, "stage", string(stage)).Inc()
	stack := debug.Stack()
	if len(stack) > maxPanicStack {
		stack = stack[:maxPanicStack]
	}
	c.RecordStage(StageReport{
		Stage:  stage,
		Reason: ReasonPanic,
		Detail: what,
		Err:    fmt.Sprintf("panic: %v\n%s", r, stack),
	})
}

// Report assembles the degradation record. Safe to call while workers
// are still running (it snapshots), but normally called once at the
// end of a run.
func (c *Controller) Report() Degradation {
	var d Degradation
	if c == nil {
		return d
	}
	if e := c.cause.Load(); e != nil {
		d.Truncated = true
		d.Stage, d.Reason, d.Detail = e.Stage, e.Reason, e.Detail
	}
	c.mu.Lock()
	d.Stages = append([]StageReport(nil), c.stages...)
	c.mu.Unlock()
	for _, s := range d.Stages {
		if s.Reason == ReasonPanic {
			d.Truncated = true
			if d.Reason == "" {
				d.Reason, d.Stage = ReasonPanic, s.Stage
			}
		}
	}
	return d
}

// Checks returns the number of amortized checkpoint consultations so
// far (test observability).
func (c *Controller) Checks() int64 {
	if c == nil {
		return 0
	}
	return c.checks.Load()
}

// Spent is a live snapshot of the controller's shared work counters —
// the per-stage-family spend the budgets draw against plus the number
// of amortized checkpoint consultations. Job orchestration reads it to
// report progress of a running mine without touching the pipeline.
type Spent struct {
	Checks       int64 `json:"checks"`
	FVMineStates int64 `json:"fvmineStates,omitempty"`
	MinerSteps   int64 `json:"minerSteps,omitempty"`
	VF2Nodes     int64 `json:"vf2Nodes,omitempty"`
}

// Total returns the summed stage-family spend.
func (s Spent) Total() int64 { return s.FVMineStates + s.MinerSteps + s.VF2Nodes }

// Spent snapshots the shared work counters. Safe to call concurrently
// with running checkpoints; a nil controller reports zeros. Counters
// are flushed every CheckInterval steps, so the snapshot trails the
// true spend by at most one interval per live goroutine.
func (c *Controller) Spent() Spent {
	if c == nil {
		return Spent{}
	}
	return Spent{
		Checks:       c.checks.Load(),
		FVMineStates: c.spentFV.Load(),
		MinerSteps:   c.spentMiner.Load(),
		VF2Nodes:     c.spentVF2.Load(),
	}
}

// budgetFor maps a stage onto its shared spend counter and limit.
func (c *Controller) budgetFor(stage Stage) (*atomic.Int64, int64) {
	switch stage {
	case StageFVMine:
		return &c.spentFV, c.budgets.FVMineStates
	case StageGSpan, StageFSG, StageLEAP, StageGroupMine:
		return &c.spentMiner, c.budgets.MinerSteps
	case StageVF2, StageVerify:
		return &c.spentVF2, c.budgets.VF2Nodes
	}
	return nil, 0
}

// Checkpoint derives a stepper for one goroutine working one stage.
// Checkpoints from the same controller share the deadline, context,
// and stage budgets, but each keeps its own local step counter — do
// not share one Checkpoint across goroutines.
func (c *Controller) Checkpoint(stage Stage) *Checkpoint {
	if c == nil {
		return nil
	}
	cp := &Checkpoint{ctl: c, stage: stage, interval: c.interval}
	cp.spent, cp.limit = c.budgetFor(stage)
	return cp
}

// Checkpoint is the amortized per-goroutine stepper. A nil *Checkpoint
// is valid: Step and Force return nil forever.
type Checkpoint struct {
	ctl      *Controller
	stage    Stage
	spent    *atomic.Int64
	limit    int64
	interval int64
	// pending counts local steps not yet flushed to the shared counter.
	pending int64
	flushed int64
}

// Step counts one unit of work and, every interval steps, consults the
// shared state. It returns the run's stop cause once tripped; the
// caller must unwind and return its partial result.
func (cp *Checkpoint) Step() error {
	if cp == nil {
		return nil
	}
	cp.pending++
	if cp.pending < cp.interval {
		return nil
	}
	return cp.sync()
}

// Force counts one unit of work and consults the shared state
// immediately. Use it for loops whose single iteration is expensive
// enough that amortization would let the deadline overshoot (e.g. one
// isomorphism test over a whole database per step).
func (cp *Checkpoint) Force() error {
	if cp == nil {
		return nil
	}
	cp.pending++
	return cp.sync()
}

// Metrics returns the owning controller's metrics registry, so library
// code handed only a checkpoint (the miners' maximality passes) can
// still meter itself. Nil for a nil or unmetered checkpoint.
func (cp *Checkpoint) Metrics() *obs.Registry {
	if cp == nil {
		return nil
	}
	return cp.ctl.Metrics()
}

// Steps returns the checkpoint's local step count (work attributable
// to this goroutine's stage loop).
func (cp *Checkpoint) Steps() int64 {
	if cp == nil {
		return 0
	}
	return cp.flushed + cp.pending
}

// sync flushes pending steps into the shared stage counter and checks
// hook, context, deadline, and budget, in that order.
func (cp *Checkpoint) sync() error {
	c := cp.ctl
	if e := c.cause.Load(); e != nil {
		return e
	}
	n := c.checks.Add(1)
	if c.hook != nil && c.hook(n) {
		return c.fail(cp.stage, ReasonCancel, fmt.Sprintf("fault hook tripped at checkpoint %d", n))
	}
	select {
	case <-c.ctx.Done():
		reason := ReasonCancel
		if c.ctx.Err() == context.DeadlineExceeded {
			reason = ReasonDeadline
		}
		return c.fail(cp.stage, reason, c.ctx.Err().Error())
	default:
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return c.fail(cp.stage, ReasonDeadline, "")
	}
	add := cp.pending
	cp.flushed += add
	cp.pending = 0
	if cp.spent != nil {
		total := cp.spent.Add(add)
		if cp.limit > 0 && total > cp.limit {
			return c.fail(cp.stage, ReasonBudget,
				fmt.Sprintf("%d steps spent of %d budgeted", total, cp.limit))
		}
	}
	return nil
}
