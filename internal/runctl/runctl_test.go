package runctl

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var c *Controller
	if c.Err() != nil || c.Stopped() {
		t.Fatal("nil controller should never stop")
	}
	cp := c.Checkpoint(StageFVMine)
	for i := 0; i < 1000; i++ {
		if err := cp.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Force(); err != nil {
		t.Fatal(err)
	}
	c.RecordStage(StageReport{Stage: StageFVMine})
	c.Recovered(StageFVMine, "x", "boom")
	if d := c.Report(); d.Truncated {
		t.Fatal("nil controller reports truncation")
	}
	if c.Context() == nil {
		t.Fatal("nil controller context")
	}
}

func TestFromDeadline(t *testing.T) {
	if FromDeadline(time.Time{}) != nil {
		t.Fatal("zero deadline should yield nil controller")
	}
	c := FromDeadline(time.Now().Add(-time.Second))
	cp := c.Checkpoint(StageGSpan)
	var err error
	for i := 0; i < 2*DefaultCheckInterval && err == nil; i++ {
		err = cp.Step()
	}
	se, ok := AsStop(err)
	if !ok || se.Reason != ReasonDeadline || se.Stage != StageGSpan {
		t.Fatalf("got %v; want deadline stop at gspan", err)
	}
}

func TestDeadlineAmortization(t *testing.T) {
	c := New(Options{Deadline: time.Now().Add(-time.Second)})
	cp := c.Checkpoint(StageFSG)
	// The first interval-1 steps never consult the clock.
	for i := 0; i < DefaultCheckInterval-1; i++ {
		if err := cp.Step(); err != nil {
			t.Fatalf("step %d tripped early: %v", i, err)
		}
	}
	if err := cp.Step(); err == nil {
		t.Fatal("interval-th step should consult the deadline")
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(Options{Context: ctx})
	cp := c.Checkpoint(StageVF2)
	if err := cp.Force(); err != nil {
		t.Fatalf("premature stop: %v", err)
	}
	cancel()
	err := cp.Force()
	se, ok := AsStop(err)
	if !ok || se.Reason != ReasonCancel {
		t.Fatalf("got %v; want cancel", err)
	}
	// The same cause is sticky for every later checkpoint.
	cp2 := c.Checkpoint(StageFVMine)
	if err2 := cp2.Force(); err2 != err {
		t.Fatalf("second checkpoint got %v; want the first cause", err2)
	}
}

func TestContextDeadlineMapsToDeadlineReason(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := New(Options{Context: ctx})
	err := c.Checkpoint(StageLEAP).Force()
	se, ok := AsStop(err)
	if !ok || se.Reason != ReasonDeadline {
		t.Fatalf("got %v; want deadline", err)
	}
}

func TestBudgetSharedAcrossCheckpoints(t *testing.T) {
	c := New(Options{Budgets: Budgets{FVMineStates: 100}, CheckInterval: 10})
	a := c.Checkpoint(StageFVMine)
	b := c.Checkpoint(StageFVMine)
	steps := 0
	var err error
	for err == nil && steps < 1000 {
		if steps%2 == 0 {
			err = a.Step()
		} else {
			err = b.Step()
		}
		steps++
	}
	se, ok := AsStop(err)
	if !ok || se.Reason != ReasonBudget {
		t.Fatalf("got %v after %d steps; want budget stop", err, steps)
	}
	if steps < 100 || steps > 120 {
		t.Fatalf("budget of 100 tripped after %d steps (interval 10)", steps)
	}
	// Other stages draw from other pools and are unaffected... until the
	// shared cause gates them.
	if se2, _ := AsStop(c.Checkpoint(StageVF2).Force()); se2 != se {
		t.Fatal("stop cause should be shared")
	}
}

func TestBudgetStageMapping(t *testing.T) {
	c := New(Options{Budgets: Budgets{VF2Nodes: 5}, CheckInterval: 1})
	cpMiner := c.Checkpoint(StageGSpan)
	for i := 0; i < 50; i++ {
		if err := cpMiner.Step(); err != nil {
			t.Fatalf("gspan should not draw from the VF2 budget: %v", err)
		}
	}
	cpVF2 := c.Checkpoint(StageVerify) // verify shares the VF2 pool
	var err error
	for i := 0; i < 50 && err == nil; i++ {
		err = cpVF2.Step()
	}
	if se, ok := AsStop(err); !ok || se.Reason != ReasonBudget {
		t.Fatalf("got %v; want VF2 budget stop", err)
	}
}

func TestHookTripsAtKthCheckpoint(t *testing.T) {
	const k = 3
	c := New(Options{
		CheckInterval: 5,
		Hook:          func(check int64) bool { return check >= k },
	})
	cp := c.Checkpoint(StageFVMine)
	var err error
	steps := 0
	for err == nil && steps < 1000 {
		err = cp.Step()
		steps++
	}
	if steps != k*5 {
		t.Fatalf("tripped after %d steps; want %d", steps, k*5)
	}
	se, ok := AsStop(err)
	if !ok || se.Reason != ReasonCancel || !strings.Contains(se.Detail, "checkpoint 3") {
		t.Fatalf("got %v", err)
	}
}

func TestStepsAccounting(t *testing.T) {
	c := New(Options{CheckInterval: 10})
	cp := c.Checkpoint(StageFSG)
	for i := 0; i < 25; i++ {
		if err := cp.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := cp.Steps(); got != 25 {
		t.Fatalf("Steps() = %d; want 25", got)
	}
}

func TestRecoveredAndReport(t *testing.T) {
	c := New(Options{})
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.Recovered(StageGroupMine, "group 7", r)
			}
		}()
		panic("kaboom")
	}()
	c.RecordStop(StageVerify, 12, 40, "partial verify")
	d := c.Report()
	if !d.Truncated || d.Reason != ReasonPanic || d.Stage != StageGroupMine {
		t.Fatalf("report = %+v", d)
	}
	if len(d.Stages) != 2 {
		t.Fatalf("stages = %+v", d.Stages)
	}
	p := d.Stages[0]
	if p.Reason != ReasonPanic || !strings.Contains(p.Err, "kaboom") || p.Detail != "group 7" {
		t.Fatalf("panic report = %+v", p)
	}
	s := d.String()
	if !strings.Contains(s, "truncated") || !strings.Contains(s, "group-mine") || !strings.Contains(s, "12/40") {
		t.Fatalf("String() = %q", s)
	}
}

func TestReportComplete(t *testing.T) {
	c := New(Options{Deadline: time.Now().Add(time.Hour)})
	cp := c.Checkpoint(StageFVMine)
	for i := 0; i < 1000; i++ {
		if err := cp.Step(); err != nil {
			t.Fatal(err)
		}
	}
	d := c.Report()
	if d.Truncated {
		t.Fatalf("unexpected truncation: %+v", d)
	}
	if d.String() != "complete" {
		t.Fatalf("String() = %q", d.String())
	}
}

// TestConcurrentCheckpoints exercises the shared state under the race
// detector: many goroutines, one controller, one budget pool.
func TestConcurrentCheckpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(Options{Context: ctx, Budgets: Budgets{MinerSteps: 50000}, CheckInterval: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cp := c.Checkpoint(StageGSpan)
			for i := 0; i < 100000; i++ {
				if err := cp.Step(); err != nil {
					return
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	cancel()
	c.Recovered(StageGSpan, "concurrent", "fake panic")
	wg.Wait()
	d := c.Report()
	if !d.Truncated {
		t.Fatal("expected truncation (budget or cancel)")
	}
	if d.Reason != ReasonBudget && d.Reason != ReasonCancel {
		t.Fatalf("reason = %q", d.Reason)
	}
}
