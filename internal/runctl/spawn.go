package runctl

import (
	"log"
	"runtime/debug"
)

// Spawn starts fn on its own goroutine behind a panic barrier. It is
// the only sanctioned way to launch a goroutine in the long-lived
// orchestration layers (internal/jobs, internal/server — enforced by
// graphsiglint's safego analyzer): an unrecovered panic there would
// kill the whole process or silently shrink a worker pool, whereas a
// recovered one becomes a report the owner can log and count.
//
// name labels the goroutine in recovery reports. onPanic, when non-nil,
// receives the recovered value and the panicking goroutine's stack; a
// nil onPanic falls back to log.Printf. onPanic runs on the dying
// goroutine after fn's own deferred functions, so WaitGroup.Done and
// similar cleanups deferred inside fn have already executed.
//
// Mining-pipeline workers keep their bespoke recover handlers
// (Controller.Recovered) — those degrade a single stage; Spawn is for
// infrastructure goroutines that have no stage to degrade.
func Spawn(name string, onPanic func(name string, r any, stack []byte), fn func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				stack := debug.Stack()
				if onPanic != nil {
					onPanic(name, r, stack)
					return
				}
				log.Printf("runctl: %s panicked: %v\n%s", name, r, stack)
			}
		}()
		fn()
	}()
}
