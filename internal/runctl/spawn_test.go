package runctl

import (
	"strings"
	"sync"
	"testing"
)

func TestSpawnRunsFunction(t *testing.T) {
	done := make(chan struct{})
	Spawn("test worker", nil, func() { close(done) })
	<-done
}

func TestSpawnIsolatesPanic(t *testing.T) {
	type report struct {
		name  string
		r     any
		stack string
	}
	got := make(chan report, 1)
	Spawn("exploding worker", func(name string, r any, stack []byte) {
		got <- report{name: name, r: r, stack: string(stack)}
	}, func() {
		panic("boom")
	})
	rep := <-got
	if rep.name != "exploding worker" {
		t.Errorf("name = %q, want %q", rep.name, "exploding worker")
	}
	if rep.r != "boom" {
		t.Errorf("recovered = %v, want boom", rep.r)
	}
	if !strings.Contains(rep.stack, "goroutine") {
		t.Errorf("stack trace missing: %q", rep.stack)
	}
}

// TestSpawnRunsDefersBeforeOnPanic pins the ordering contract: fn's own
// deferred cleanups (WaitGroup.Done in a worker pool) execute before
// the panic report fires.
func TestSpawnRunsDefersBeforeOnPanic(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	Spawn("worker", func(name string, r any, stack []byte) {
		wg.Wait() // deadlocks (and fails the test by timeout) if Done has not run
		close(done)
	}, func() {
		defer wg.Done()
		panic("boom")
	})
	<-done
}
