package runctl

import "testing"

// TestAdministrativeCancel: Cancel stops the run at the next
// consultation with a cancel cause, without any context plumbing.
func TestAdministrativeCancel(t *testing.T) {
	ctl := New(Options{CheckInterval: 1})
	cp := ctl.Checkpoint(StageFVMine)
	if err := cp.Step(); err != nil {
		t.Fatalf("step before cancel: %v", err)
	}
	ctl.Cancel("operator said stop")
	err := cp.Step()
	if err == nil {
		t.Fatal("step after Cancel returned nil")
	}
	se, ok := AsStop(err)
	if !ok || se.Reason != ReasonCancel {
		t.Fatalf("stop cause = %v; want cancel", err)
	}
	if se.Detail != "operator said stop" {
		t.Errorf("detail = %q", se.Detail)
	}
	d := ctl.Report()
	if !d.Truncated || d.Reason != ReasonCancel {
		t.Errorf("report = %+v", d)
	}
	// First cause wins: a later Cancel must not overwrite it.
	ctl.Cancel("second cancel")
	if se2, _ := AsStop(ctl.Err()); se2.Detail != "operator said stop" {
		t.Errorf("later cancel overwrote first cause: %q", se2.Detail)
	}
	// Nil controller: no-op, no panic.
	var nilCtl *Controller
	nilCtl.Cancel("x")
}

// TestSpentSnapshot: Spent mirrors the shared budget counters the
// checkpoints flush into.
func TestSpentSnapshot(t *testing.T) {
	var nilCtl *Controller
	if s := nilCtl.Spent(); s != (Spent{}) {
		t.Errorf("nil controller spent = %+v", s)
	}
	ctl := New(Options{CheckInterval: 1})
	fv := ctl.Checkpoint(StageFVMine)
	miner := ctl.Checkpoint(StageGSpan)
	vf2 := ctl.Checkpoint(StageVF2)
	for i := 0; i < 5; i++ {
		fv.Step()
	}
	for i := 0; i < 3; i++ {
		miner.Step()
	}
	for i := 0; i < 2; i++ {
		vf2.Step()
	}
	s := ctl.Spent()
	if s.FVMineStates != 5 || s.MinerSteps != 3 || s.VF2Nodes != 2 {
		t.Errorf("spent = %+v; want 5/3/2", s)
	}
	if s.Total() != 10 {
		t.Errorf("total = %d; want 10", s.Total())
	}
	if s.Checks != 10 {
		t.Errorf("checks = %d; want 10 at interval 1", s.Checks)
	}
}
