package runctl

import (
	"time"

	"graphsig/internal/obs"
)

// StageSpan meters one execution of one pipeline stage: its wall time,
// its completed work units, and whether it ended completed or degraded.
// Spans are the producer side of the per-stage invariant the test suite
// locks down:
//
//	started_total == completed_total + degraded_total
//
// Every StartStage increments started exactly once, and the span's
// first End or Fail increments exactly one of the other two (later
// calls are no-ops), so the books balance at every quiescent point —
// including mid-run trips, where a stage that began under a live
// controller ends under a stopped one and books itself degraded.
//
// A nil *StageSpan is valid and free: StartStage returns nil whenever
// the run is unmetered, so call sites never branch.
type StageSpan struct {
	ctl   *Controller
	stage Stage
	start time.Time
	done  bool
}

// StartStage opens a metered span for stage, incrementing its started
// counter. It returns nil (a no-op span) when the controller is nil or
// carries no metrics registry. Spans are goroutine-local, like
// Checkpoints: do not share one across goroutines.
func (c *Controller) StartStage(stage Stage) *StageSpan {
	if c == nil || c.metrics == nil {
		return nil
	}
	c.metrics.Counter(obs.MStageStarted, "stage", string(stage)).Inc()
	return &StageSpan{ctl: c, stage: stage, start: time.Now()}
}

// End closes the span with units of completed work. The outcome is
// derived from the shared run state: if the run has a stop cause the
// stage is booked degraded (it ran under — or into — a trip), otherwise
// completed. Duration and units are recorded either way; units of a
// degraded stage are the work that did finish, mirroring
// StageReport.Completed. Only the first End or Fail counts.
func (s *StageSpan) End(units int64) {
	if s == nil || s.done {
		return
	}
	if err := s.ctl.Err(); err != nil {
		s.close(units, ReasonOf(err))
		return
	}
	s.close(units, "")
}

// Fail closes the span explicitly degraded with the given reason — for
// failures that do not stop the whole run, like an isolated per-group
// worker panic, which Controller.Recovered records without setting the
// shared stop cause.
func (s *StageSpan) Fail(reason Reason, units int64) {
	if s == nil || s.done {
		return
	}
	s.close(units, reason)
}

// close books the span's duration, units, and outcome exactly once.
func (s *StageSpan) close(units int64, degraded Reason) {
	s.done = true
	m := s.ctl.metrics
	st := string(s.stage)
	m.Histogram(obs.MStageDuration, obs.DefBuckets, "stage", st).ObserveDuration(time.Since(s.start))
	m.Counter(obs.MStageUnits, "stage", st).Add(units)
	if degraded != "" {
		m.Counter(obs.MStageDegraded, "stage", st).Inc()
		return
	}
	m.Counter(obs.MStageCompleted, "stage", st).Inc()
}
