// Package rwr implements the random-walk-with-restart feature extraction
// of §II-C: for each node of a graph, the stationary distribution of a
// walker that restarts at the node with probability alpha is converted
// into a distribution of traversed features and discretized into bins.
// This simulates sliding a window across the graph — one feature vector
// per node — while weighting features by proximity to the window center.
package rwr

import (
	"math"
	"runtime"
	"sync"

	"graphsig/internal/feature"
	"graphsig/internal/graph"
)

// Config controls the walk. The zero value is not valid; use Defaults.
type Config struct {
	// Alpha is the restart probability (paper default 0.25, giving an
	// effective window of ~1/alpha = 4 hops).
	Alpha float64
	// Bins is the number of discretization bins (paper default 10):
	// a feature mass v maps to round(Bins·v).
	Bins int
	// MaxIterations bounds the power iteration (default 100).
	MaxIterations int
	// Tolerance is the L1 convergence threshold (default 1e-9).
	Tolerance float64
	// Workers bounds DatabaseVectors' goroutine fan-out (0 or negative
	// = GOMAXPROCS). Output is deterministic at any setting.
	Workers int
}

// Defaults returns the paper's Table IV configuration.
func Defaults() Config {
	return Config{Alpha: 0.25, Bins: 10, MaxIterations: 100, Tolerance: 1e-9}
}

func (c *Config) fill() {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.25
	}
	if c.Bins <= 0 {
		c.Bins = 10
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-9
	}
}

// Walk runs RWR from start on g and returns the discretized feature
// vector of the window centered at start.
func Walk(g *graph.Graph, start int, fs *feature.Set, cfg Config) feature.Vector {
	cfg.fill()
	masses := FeatureMasses(g, start, fs, cfg)
	return Discretize(masses, cfg.Bins)
}

// FeatureMasses returns the continuous per-feature traversal distribution
// of an RWR from start: entry i is the stationary probability that a
// non-restart step traverses feature i. The entries sum to 1 for any node
// with at least one neighbor, and are all zero for isolated nodes.
func FeatureMasses(g *graph.Graph, start int, fs *feature.Set, cfg Config) []float64 {
	cfg.fill()
	masses := make([]float64, fs.Len())
	if g.Degree(start) == 0 {
		return masses
	}
	p := stationary(g, start, cfg)

	// At stationarity, a step departs node u with probability p[u]·(1-α)
	// and picks each incident edge with probability 1/deg(u). Each
	// directed traversal u->v updates the feature of edge (u,v): the
	// edge-type feature when the endpoint pair is in the set, otherwise
	// the atom feature of the node stepped onto (v).
	total := 0.0
	c := g.CSR()
	for u := 0; u < len(c.NodeLabels); u++ {
		deg := c.RowStart[u+1] - c.RowStart[u]
		if p[u] == 0 || deg == 0 {
			continue
		}
		out := p[u] * (1 - cfg.Alpha) / float64(deg)
		lu := c.NodeLabels[u]
		for i := c.RowStart[u]; i < c.RowStart[u+1]; i++ {
			lv, bond := c.NodeLabels[c.Nbr[i]], c.EdgeLabels[i]
			if fi, ok := fs.EdgeFeature(lu, lv, bond); ok {
				masses[fi] += out
			} else if fi, ok := fs.AtomFeature(lv); ok {
				masses[fi] += out
			}
			total += out
		}
	}
	// Normalize to a distribution over features (the paper's "continuous
	// distribution of features ... in the range [0,1]").
	if total > 0 {
		for i := range masses {
			masses[i] /= total
		}
	}
	return masses
}

// stationary computes the RWR stationary node distribution by power
// iteration: p' = α·e_start + (1-α)·PᵀP p with uniform neighbor choice.
// Nodes unreachable from start (or past the walk's effective horizon)
// receive vanishing mass.
func stationary(g *graph.Graph, start int, cfg Config) []float64 {
	n := g.NumNodes()
	c := g.CSR()
	p := make([]float64, n)
	next := make([]float64, n)
	p[start] = 1
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		for i := range next {
			next[i] = 0
		}
		next[start] = cfg.Alpha
		for u := 0; u < n; u++ {
			if p[u] == 0 {
				continue
			}
			deg := c.RowStart[u+1] - c.RowStart[u]
			if deg == 0 {
				// Dangling mass restarts.
				next[start] += (1 - cfg.Alpha) * p[u]
				continue
			}
			share := (1 - cfg.Alpha) * p[u] / float64(deg)
			for i := c.RowStart[u]; i < c.RowStart[u+1]; i++ {
				next[c.Nbr[i]] += share
			}
		}
		delta := 0.0
		for i := range p {
			delta += math.Abs(next[i] - p[i])
		}
		p, next = next, p
		if delta < cfg.Tolerance {
			break
		}
	}
	return p
}

// StationaryExact solves the RWR stationary distribution as a linear
// system by Gauss-Seidel iteration to machine precision:
//
//	p = α·e_start + (1-α)·Pᵀ p
//
// It exists as a high-accuracy oracle for the power iteration (see the
// equivalence test) and for callers that need exact stationary masses.
func StationaryExact(g *graph.Graph, start int, alpha float64) []float64 {
	n := g.NumNodes()
	p := make([]float64, n)
	p[start] = 1
	for sweep := 0; sweep < 10000; sweep++ {
		delta := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			g.Neighbors(v, func(u int, _ graph.Label) {
				if d := g.Degree(u); d > 0 {
					sum += p[u] / float64(d)
				}
			})
			next := (1 - alpha) * sum
			if v == start {
				next += alpha
			}
			delta += math.Abs(next - p[v])
			p[v] = next
		}
		if delta < 1e-14 {
			break
		}
	}
	return p
}

// Discretize maps continuous masses in [0,1] to bins: round(bins·v),
// matching the paper's example (0.07 -> 1, 0.34 -> 3 with 10 bins).
func Discretize(masses []float64, bins int) feature.Vector {
	v := make(feature.Vector, len(masses))
	for i, m := range masses {
		b := int(math.Round(float64(bins) * m))
		if b < 0 {
			b = 0
		}
		if b > 255 {
			b = 255
		}
		v[i] = uint8(b)
	}
	return v
}

// NodeVector is the vector produced by RWR on one node, tagged with its
// provenance: vector(n) and label(v) in the paper's notation.
type NodeVector struct {
	// GraphID is the index of the source graph in the database slice.
	GraphID int
	// NodeID is the source node within that graph.
	NodeID int
	// Label is the source node's label (vectors are grouped by it in
	// Algorithm 2, line 6).
	Label graph.Label
	// Vec is the discretized RWR feature vector.
	Vec feature.Vector
}

// GraphVectors runs RWR on every node of g and returns one vector per
// node, in node order.
func GraphVectors(g *graph.Graph, fs *feature.Set, cfg Config) []feature.Vector {
	out := make([]feature.Vector, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		out[v] = Walk(g, v, fs, cfg)
	}
	return out
}

// DatabaseVectors converts an entire database into feature space: RWR on
// every node of every graph (Algorithm 2, lines 3-4). Work is spread
// across cfg.Workers goroutines (default GOMAXPROCS); output order is
// deterministic (by graph, then node).
func DatabaseVectors(db []*graph.Graph, fs *feature.Set, cfg Config) []NodeVector {
	cfg.fill()
	offsets := make([]int, len(db)+1)
	for i, g := range db {
		offsets[i+1] = offsets[i] + g.NumNodes()
	}
	out := make([]NodeVector, offsets[len(db)])

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(db) {
		workers = len(db)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range work {
				g := db[gi]
				base := offsets[gi]
				for v := 0; v < g.NumNodes(); v++ {
					out[base+v] = NodeVector{
						GraphID: gi,
						NodeID:  v,
						Label:   g.NodeLabel(v),
						Vec:     Walk(g, v, fs, cfg),
					}
				}
			}
		}()
	}
	for gi := range db {
		work <- gi
	}
	close(work)
	wg.Wait()
	return out
}

// WindowCounts is the ablation alternative to RWR discussed in §II-C: it
// simply counts feature occurrences inside the radius-bounded window
// around start (each edge once, no proximity weighting) and normalizes to
// a distribution before discretization. Benchmarks compare its
// discriminative power against RWR.
func WindowCounts(g *graph.Graph, start, radius int, fs *feature.Set, bins int) feature.Vector {
	window := g.CutGraph(start, radius)
	masses := make([]float64, fs.Len())
	total := 0.0
	for _, e := range window.Edges() {
		lu, lv := window.NodeLabel(e.From), window.NodeLabel(e.To)
		if fi, ok := fs.EdgeFeature(lu, lv, e.Label); ok {
			masses[fi]++
		} else {
			// Count both endpoints' atom features, mirroring the
			// walker updating the atom stepped onto in either direction.
			if fi, ok := fs.AtomFeature(lu); ok {
				masses[fi]++
			}
			if fi, ok := fs.AtomFeature(lv); ok {
				masses[fi]++
			}
		}
		total++
	}
	if total > 0 {
		for i := range masses {
			masses[i] /= total
		}
	}
	return Discretize(masses, bins)
}
