package rwr

import (
	"math"
	"math/rand"
	"testing"

	"graphsig/internal/feature"
	"graphsig/internal/graph"
)

// labels: a=0, b=1, c=2, d=3, e=4, f=5 with single edge label 0.
func build(labels []graph.Label, edges [][2]int) *graph.Graph {
	g := graph.New(len(labels), len(edges))
	for _, l := range labels {
		g.AddNode(l)
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], 0)
	}
	return g
}

// edgeSet builds an AllEdgeTypesSet over the given graphs.
func edgeSet(db ...*graph.Graph) *feature.Set {
	return feature.AllEdgeTypesSet(db, nil)
}

func TestDiscretizePaperExamples(t *testing.T) {
	v := Discretize([]float64{0.07, 0.34, 0, 1}, 10)
	want := feature.Vector{1, 3, 0, 10}
	if !v.Equal(want) {
		t.Errorf("Discretize = %v; want %v", v, want)
	}
}

func TestFeatureMassesSumToOne(t *testing.T) {
	g := build([]graph.Label{0, 1, 2, 1}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	fs := edgeSet(g)
	for start := 0; start < g.NumNodes(); start++ {
		m := FeatureMasses(g, start, fs, Defaults())
		sum := 0.0
		for _, x := range m {
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("start %d: masses sum to %f", start, sum)
		}
	}
}

func TestIsolatedNodeZeroVector(t *testing.T) {
	g := build([]graph.Label{0, 1, 2}, [][2]int{{0, 1}})
	fs := edgeSet(g)
	v := Walk(g, 2, fs, Defaults())
	if !v.IsZero() {
		t.Errorf("isolated node vector = %v; want zero", v)
	}
}

func TestProximityWeighting(t *testing.T) {
	// Long path a-b-c-d-e-f (distinct labels so each edge is its own
	// feature). From node 0, the near edge must carry more mass than the
	// far edge: RWR preserves proximity, unlike plain counting.
	g := build([]graph.Label{0, 1, 2, 3, 4, 5},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	fs := edgeSet(g)
	m := FeatureMasses(g, 0, fs, Defaults())
	near, _ := fs.EdgeFeature(0, 1, 0)
	far, _ := fs.EdgeFeature(4, 5, 0)
	if !(m[near] > m[far]) {
		t.Errorf("near=%f far=%f; want near > far", m[near], m[far])
	}
	if m[far] < 0 {
		t.Errorf("negative mass %f", m[far])
	}
}

func TestHigherAlphaTightensWindow(t *testing.T) {
	g := build([]graph.Label{0, 1, 2, 3, 4, 5},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	fs := edgeSet(g)
	far, _ := fs.EdgeFeature(4, 5, 0)
	loose := Defaults()
	loose.Alpha = 0.1
	tight := Defaults()
	tight.Alpha = 0.6
	mLoose := FeatureMasses(g, 0, fs, loose)
	mTight := FeatureMasses(g, 0, fs, tight)
	if !(mTight[far] < mLoose[far]) {
		t.Errorf("far mass: tight=%f loose=%f; want tight < loose", mTight[far], mLoose[far])
	}
}

func TestSymmetricNodesGetEqualVectors(t *testing.T) {
	// Star: center 0 (label 9), leaves all label 1. All leaves are
	// automorphic, so their vectors must be identical.
	g := build([]graph.Label{9, 1, 1, 1}, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	fs := edgeSet(g)
	v1 := Walk(g, 1, fs, Defaults())
	v2 := Walk(g, 2, fs, Defaults())
	v3 := Walk(g, 3, fs, Defaults())
	if !v1.Equal(v2) || !v2.Equal(v3) {
		t.Errorf("automorphic leaves differ: %v %v %v", v1, v2, v3)
	}
}

func TestWalkDeterministic(t *testing.T) {
	g := build([]graph.Label{0, 1, 2, 1, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	fs := edgeSet(g)
	a := Walk(g, 0, fs, Defaults())
	b := Walk(g, 0, fs, Defaults())
	if !a.Equal(b) {
		t.Error("Walk not deterministic")
	}
}

// TestPaperFig6Scenario reconstructs the qualitative claim of Fig 6 /
// Table II: graphs sharing the subgraph of Fig 7 (a-b with b-c and b-d)
// have a common non-zero floor exactly on the shared edge features, and
// adding a graph without the subgraph zeroes the floor.
func TestPaperFig6Scenario(t *testing.T) {
	const (
		a = 0
		b = 1
		c = 2
		d = 3
		e = 4
		f = 5
	)
	// G1-G3 contain a-b, b-c, b-d (plus varying extras). G4 does not.
	g1 := build([]graph.Label{a, b, c, d, e},
		[][2]int{{0, 1}, {1, 2}, {1, 3}, {0, 4}})
	g2 := build([]graph.Label{a, b, c, d, f},
		[][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}})
	g3 := build([]graph.Label{a, b, c, d, e, f},
		[][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {2, 5}})
	g4 := build([]graph.Label{a, d, f},
		[][2]int{{0, 1}, {0, 2}, {1, 2}})
	db := []*graph.Graph{g1, g2, g3, g4}
	fs := feature.AllEdgeTypesSet(db, nil)
	cfg := Defaults()

	// Vectors from the 'a' node (node 0) of each graph.
	var vecs []feature.Vector
	for _, g := range db[:3] {
		vecs = append(vecs, Walk(g, 0, fs, cfg))
	}
	floor := feature.Floor(vecs)
	if floor.IsZero() {
		t.Fatal("floor of G1-G3 'a' vectors is zero; shared subgraph lost")
	}
	for _, pair := range [][2]graph.Label{{a, b}, {b, c}, {b, d}} {
		fi, ok := fs.EdgeFeature(pair[0], pair[1], 0)
		if !ok {
			t.Fatalf("missing feature %v", pair)
		}
		if floor[fi] == 0 {
			t.Errorf("shared edge %v has zero floor", pair)
		}
	}
	// Features of the non-shared edges must floor to zero.
	if fi, ok := fs.EdgeFeature(a, e, 0); ok && floor[fi] != 0 {
		t.Errorf("non-shared edge a-e has floor %d", floor[fi])
	}
	// Adding G4 (no common subgraph) zeroes the floor.
	all := append(vecs, Walk(g4, 0, fs, cfg))
	if !feature.Floor(all).IsZero() {
		t.Errorf("floor over G1-G4 = %v; want zero", feature.Floor(all))
	}
}

func TestDatabaseVectorsOrderAndParallelism(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	var db []*graph.Graph
	for i := 0; i < 20; i++ {
		n := 2 + r.Intn(8)
		g := graph.New(n, n)
		for v := 0; v < n; v++ {
			g.AddNode(graph.Label(r.Intn(3)))
		}
		for v := 1; v < n; v++ {
			g.MustAddEdge(r.Intn(v), v, 0)
		}
		g.ID = i
		db = append(db, g)
	}
	fs := feature.AllEdgeTypesSet(db, nil)
	cfg := Defaults()
	nvs := DatabaseVectors(db, fs, cfg)

	wantLen := 0
	for _, g := range db {
		wantLen += g.NumNodes()
	}
	if len(nvs) != wantLen {
		t.Fatalf("got %d vectors; want %d", len(nvs), wantLen)
	}
	idx := 0
	for gi, g := range db {
		for v := 0; v < g.NumNodes(); v++ {
			nv := nvs[idx]
			idx++
			if nv.GraphID != gi || nv.NodeID != v {
				t.Fatalf("vector %d has provenance (%d,%d); want (%d,%d)", idx-1, nv.GraphID, nv.NodeID, gi, v)
			}
			if nv.Label != g.NodeLabel(v) {
				t.Fatalf("vector %d label mismatch", idx-1)
			}
			// Parallel result must equal the serial walk.
			if want := Walk(g, v, fs, cfg); !nv.Vec.Equal(want) {
				t.Fatalf("vector %d differs from serial walk", idx-1)
			}
		}
	}
}

func TestWindowCounts(t *testing.T) {
	g := build([]graph.Label{0, 1, 2, 3, 4, 5},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	fs := edgeSet(g)
	v := WindowCounts(g, 0, 2, fs, 10)
	near, _ := fs.EdgeFeature(0, 1, 0)
	mid, _ := fs.EdgeFeature(1, 2, 0)
	far, _ := fs.EdgeFeature(4, 5, 0)
	if v[near] == 0 || v[mid] == 0 {
		t.Errorf("in-window edges zero: %v", v)
	}
	// Plain counting weights near and mid equally — the information RWR
	// preserves and counting loses.
	if v[near] != v[mid] {
		t.Errorf("near=%d mid=%d; plain counts should be equal", v[near], v[mid])
	}
	if v[far] != 0 {
		t.Errorf("edge outside radius counted: %v", v)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Alpha != 0.25 || c.Bins != 10 || c.MaxIterations != 100 || c.Tolerance != 1e-9 {
		t.Errorf("fill gave %+v", c)
	}
}

func TestStationaryExactMatchesPowerIteration(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(12)
		g := graph.New(n, n)
		for v := 0; v < n; v++ {
			g.AddNode(graph.Label(r.Intn(3)))
		}
		for v := 1; v < n; v++ {
			g.MustAddEdge(r.Intn(v), v, 0)
		}
		start := r.Intn(n)
		cfg := Defaults()
		cfg.MaxIterations = 2000
		cfg.Tolerance = 1e-13
		power := stationary(g, start, cfg)
		exact := StationaryExact(g, start, cfg.Alpha)
		for v := 0; v < n; v++ {
			if math.Abs(power[v]-exact[v]) > 1e-8 {
				t.Fatalf("trial %d node %d: power %g vs exact %g", trial, v, power[v], exact[v])
			}
		}
	}
}

func TestStationaryExactSumsToOne(t *testing.T) {
	g := build([]graph.Label{0, 1, 2, 3}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	p := StationaryExact(g, 0, 0.25)
	sum := 0.0
	for _, x := range p {
		sum += x
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Errorf("stationary sums to %f", sum)
	}
	// The start node holds the most mass.
	for v := 1; v < g.NumNodes(); v++ {
		if p[v] > p[0] {
			t.Errorf("node %d mass %f exceeds start %f", v, p[v], p[0])
		}
	}
}

func TestWalkOnEmptyFeatureSet(t *testing.T) {
	g := build([]graph.Label{0, 1}, [][2]int{{0, 1}})
	fs := feature.AllEdgeTypesSet(nil, nil) // zero features
	v := Walk(g, 0, fs, Defaults())
	if len(v) != 0 {
		t.Errorf("vector over empty feature set has %d dims", len(v))
	}
}

func TestDiscretizeBinsBounds(t *testing.T) {
	v := Discretize([]float64{-0.5, 2.0}, 10)
	if v[0] != 0 {
		t.Errorf("negative mass bin = %d; want 0", v[0])
	}
	if v[1] != 20 {
		t.Errorf("mass 2.0 bin = %d; want 20", v[1])
	}
	big := Discretize([]float64{100}, 10)
	if big[0] != 255 {
		t.Errorf("overflow bin = %d; want clamp 255", big[0])
	}
}

func TestDatabaseVectorsEmpty(t *testing.T) {
	fs := feature.AllEdgeTypesSet(nil, nil)
	if got := DatabaseVectors(nil, fs, Defaults()); len(got) != 0 {
		t.Errorf("got %d vectors from empty db", len(got))
	}
}

func TestStationaryDisconnectedStart(t *testing.T) {
	// Start node in a 2-node component of a larger graph: mass must stay
	// in the component.
	g := build([]graph.Label{0, 1, 2, 3}, [][2]int{{0, 1}, {2, 3}})
	p := stationary(g, 0, Defaults())
	if p[2]+p[3] > 1e-9 {
		t.Errorf("mass leaked to other component: %v", p)
	}
	if p[0]+p[1] < 0.999 {
		t.Errorf("mass lost: %v", p)
	}
}
