package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/jobs"
)

// Client is a typed client for the GraphSig HTTP service.
type Client struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Stats returns the served database's summary.
func (c *Client) Stats() (graphs int, avgAtoms, avgBonds float64, err error) {
	var out statsResponse
	if err := c.get("/stats", &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Graphs, out.AvgAtoms, out.AvgBonds, nil
}

// MineOptions configures a remote mine.
type MineOptions struct {
	MaxPvalue  float64
	MinFreqPct float64
	Radius     int
	TopK       int
	TimeoutMs  int
	Limit      int
}

// MinedPattern is one remotely mined significant subgraph.
type MinedPattern struct {
	// Graph is the pattern parsed back from the service's SMILES.
	Graph     *graph.Graph
	SMILES    string
	PValue    float64
	Support   int
	Frequency float64
}

// Mine runs GraphSig on the served database.
func (c *Client) Mine(opt MineOptions) ([]MinedPattern, bool, error) {
	req := mineRequest{
		MaxPvalue:  opt.MaxPvalue,
		MinFreqPct: opt.MinFreqPct,
		Radius:     opt.Radius,
		TopK:       opt.TopK,
		TimeoutMs:  opt.TimeoutMs,
		Limit:      opt.Limit,
	}
	var out mineResponse
	if err := c.post("/mine", req, &out); err != nil {
		return nil, false, err
	}
	patterns := make([]MinedPattern, 0, len(out.Patterns))
	for _, p := range out.Patterns {
		g, err := chem.ParseSMILES(p.SMILES)
		if err != nil {
			return nil, false, fmt.Errorf("server returned unparseable pattern %q: %w", p.SMILES, err)
		}
		patterns = append(patterns, MinedPattern{
			Graph:     g,
			SMILES:    p.SMILES,
			PValue:    p.PValue,
			Support:   p.Support,
			Frequency: p.Frequency,
		})
	}
	return patterns, out.Truncated, nil
}

// Query returns the ids of served graphs containing the SMILES pattern.
func (c *Client) Query(smiles string) ([]int, error) {
	var out queryResponse
	if err := c.post("/query", smilesRequest{SMILES: smiles}, &out); err != nil {
		return nil, err
	}
	return out.IDs, nil
}

// Significance evaluates one pattern's support, frequency and p-value
// against the served database.
func (c *Client) Significance(smiles string) (support int, frequency, pValue float64, err error) {
	var out significanceResponse
	if err := c.post("/significance", smilesRequest{SMILES: smiles}, &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Support, out.Frequency, out.PValue, nil
}

// Job mirrors the service's job status for client consumers.
type Job struct {
	ID              string
	State           jobs.State
	Cached          bool
	CancelRequested bool
	Error           string
	// Patterns carries the finished job's mined patterns (parsed back
	// from SMILES), nil while the job is still queued or running.
	Patterns []MinedPattern
	// Truncated reports a cut-short run (deadline, cancel, budget).
	Truncated bool
}

// Finished reports whether the job reached a terminal state.
func (j Job) Finished() bool { return j.State.Finished() }

// SubmitMine submits an asynchronous mine and returns the job id plus
// whether the request coalesced with an in-flight identical mine or
// hit the result cache.
func (c *Client) SubmitMine(opt MineOptions) (id string, coalesced, cached bool, err error) {
	req := mineRequest{
		MaxPvalue:  opt.MaxPvalue,
		MinFreqPct: opt.MinFreqPct,
		Radius:     opt.Radius,
		TopK:       opt.TopK,
		TimeoutMs:  opt.TimeoutMs,
		Limit:      opt.Limit,
	}
	var out jobSubmitResponse
	if err := c.post("/jobs/mine", req, &out); err != nil {
		return "", false, false, err
	}
	return out.ID, out.Coalesced, out.Cached, nil
}

// Job polls one job's status.
func (c *Client) Job(id string) (Job, error) {
	var out jobStatus
	if err := c.get("/jobs/"+id, &out); err != nil {
		return Job{}, err
	}
	return clientJob(out)
}

// Jobs lists the service's live jobs, newest first.
func (c *Client) Jobs() ([]Job, error) {
	var out struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := c.get("/jobs", &out); err != nil {
		return nil, err
	}
	list := make([]Job, 0, len(out.Jobs))
	for _, js := range out.Jobs {
		j, err := clientJob(js)
		if err != nil {
			return nil, err
		}
		list = append(list, j)
	}
	return list, nil
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(id string) (Job, error) {
	req, err := http.NewRequest(http.MethodDelete, c.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return Job{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	var out jobStatus
	if err := decodeResponse(resp, &out); err != nil {
		return Job{}, err
	}
	return clientJob(out)
}

// WaitJob polls a job until it finishes or timeout passes (0 = wait
// forever), sleeping poll between probes (0 = 100ms).
func (c *Client) WaitJob(id string, poll, timeout time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		j, err := c.Job(id)
		if err != nil {
			return Job{}, err
		}
		if j.Finished() {
			return j, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return j, fmt.Errorf("client: job %s still %s after %s", id, j.State, timeout)
		}
		time.Sleep(poll)
	}
}

// MineAsync is the submit-and-wait convenience: it submits a mine,
// waits for the job to finish, and returns the patterns like Mine.
func (c *Client) MineAsync(opt MineOptions, poll, timeout time.Duration) ([]MinedPattern, bool, error) {
	id, _, _, err := c.SubmitMine(opt)
	if err != nil {
		return nil, false, err
	}
	j, err := c.WaitJob(id, poll, timeout)
	if err != nil {
		return nil, false, err
	}
	if j.State == jobs.StateFailed {
		return nil, false, errors.New("server: mine failed: " + j.Error)
	}
	return j.Patterns, j.Truncated, nil
}

// clientJob converts a wire status to the client view, parsing result
// patterns back into graphs.
func clientJob(js jobStatus) (Job, error) {
	j := Job{
		ID:              js.ID,
		State:           js.State,
		Cached:          js.Cached,
		CancelRequested: js.CancelRequested,
		Error:           js.Error,
	}
	if js.Result != nil {
		j.Truncated = js.Result.Truncated
		j.Patterns = make([]MinedPattern, 0, len(js.Result.Patterns))
		for _, p := range js.Result.Patterns {
			g, err := chem.ParseSMILES(p.SMILES)
			if err != nil {
				return Job{}, fmt.Errorf("server returned unparseable pattern %q: %w", p.SMILES, err)
			}
			j.Patterns = append(j.Patterns, MinedPattern{
				Graph:     g,
				SMILES:    p.SMILES,
				PValue:    p.PValue,
				Support:   p.Support,
				Frequency: p.Frequency,
			})
		}
	}
	return j, nil
}

func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (status %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
