package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
)

// Client is a typed client for the GraphSig HTTP service.
type Client struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Stats returns the served database's summary.
func (c *Client) Stats() (graphs int, avgAtoms, avgBonds float64, err error) {
	var out statsResponse
	if err := c.get("/stats", &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Graphs, out.AvgAtoms, out.AvgBonds, nil
}

// MineOptions configures a remote mine.
type MineOptions struct {
	MaxPvalue  float64
	MinFreqPct float64
	Radius     int
	TopK       int
	TimeoutMs  int
	Limit      int
}

// MinedPattern is one remotely mined significant subgraph.
type MinedPattern struct {
	// Graph is the pattern parsed back from the service's SMILES.
	Graph     *graph.Graph
	SMILES    string
	PValue    float64
	Support   int
	Frequency float64
}

// Mine runs GraphSig on the served database.
func (c *Client) Mine(opt MineOptions) ([]MinedPattern, bool, error) {
	req := mineRequest{
		MaxPvalue:  opt.MaxPvalue,
		MinFreqPct: opt.MinFreqPct,
		Radius:     opt.Radius,
		TopK:       opt.TopK,
		TimeoutMs:  opt.TimeoutMs,
		Limit:      opt.Limit,
	}
	var out mineResponse
	if err := c.post("/mine", req, &out); err != nil {
		return nil, false, err
	}
	patterns := make([]MinedPattern, 0, len(out.Patterns))
	for _, p := range out.Patterns {
		g, err := chem.ParseSMILES(p.SMILES)
		if err != nil {
			return nil, false, fmt.Errorf("server returned unparseable pattern %q: %w", p.SMILES, err)
		}
		patterns = append(patterns, MinedPattern{
			Graph:     g,
			SMILES:    p.SMILES,
			PValue:    p.PValue,
			Support:   p.Support,
			Frequency: p.Frequency,
		})
	}
	return patterns, out.Truncated, nil
}

// Query returns the ids of served graphs containing the SMILES pattern.
func (c *Client) Query(smiles string) ([]int, error) {
	var out queryResponse
	if err := c.post("/query", smilesRequest{SMILES: smiles}, &out); err != nil {
		return nil, err
	}
	return out.IDs, nil
}

// Significance evaluates one pattern's support, frequency and p-value
// against the served database.
func (c *Client) Significance(smiles string) (support int, frequency, pValue float64, err error) {
	var out significanceResponse
	if err := c.post("/significance", smilesRequest{SMILES: smiles}, &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Support, out.Frequency, out.PValue, nil
}

func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (status %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
