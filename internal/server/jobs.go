package server

// HTTP surface of the asynchronous mining API, backed by
// internal/jobs:
//
//	POST   /jobs/mine  submit (or coalesce/cache-hit) a mine; 202 + id
//	GET    /jobs       list live jobs, newest first
//	GET    /jobs/{id}  status, progress, and result once finished
//	DELETE /jobs/{id}  cancel via the job's runctl controller

import (
	"encoding/json"
	"net/http"
	"time"

	"graphsig/internal/jobs"
	"graphsig/internal/runctl"
)

// jobStatus is the wire form of one job.
type jobStatus struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	Label string     `json:"label,omitempty"`
	// Cached: the job never executed; its result came from the dedup
	// result cache.
	Cached          bool  `json:"cached,omitempty"`
	CancelRequested bool  `json:"cancelRequested,omitempty"`
	CreatedMs       int64 `json:"createdMs"`
	StartedMs       int64 `json:"startedMs,omitempty"`
	FinishedMs      int64 `json:"finishedMs,omitempty"`
	// Progress is the live runctl stage-counter snapshot for running
	// jobs and the final spend for finished ones.
	Progress runctl.Spent `json:"progress"`
	// Result is present once the job finished executing — including
	// the partial result of a canceled or deadline-cut run.
	Result      *mineResponse       `json:"result,omitempty"`
	Degradation *runctl.Degradation `json:"degradation,omitempty"`
	Error       string              `json:"error,omitempty"`
}

// jobSubmitResponse answers POST /jobs/mine.
type jobSubmitResponse struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	// Coalesced: an identical job was already in flight; this id names
	// it and no new execution was scheduled.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cached: an identical mine had already completed; the job is born
	// done with the cached result.
	Cached   bool   `json:"cached,omitempty"`
	Location string `json:"location"`
}

// epochMs renders a timestamp for the wire (0 = unset).
func epochMs(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// renderJob shapes a snapshot for the wire. The result limit the
// submitter asked for rides along in the job's Meta.
func renderJob(snap jobs.Snapshot) jobStatus {
	st := jobStatus{
		ID:              snap.ID,
		State:           snap.State,
		Label:           snap.Label,
		Cached:          snap.Cached,
		CancelRequested: snap.CancelRequested,
		CreatedMs:       epochMs(snap.Created),
		StartedMs:       epochMs(snap.Started),
		FinishedMs:      epochMs(snap.Finished),
		Progress:        snap.Progress,
		Degradation:     snap.Degradation,
		Error:           snap.Err,
	}
	if snap.Result != nil {
		limit, _ := snap.Meta.(int)
		resp := renderMine(snap, limit)
		resp.Cached = snap.Cached
		st.Result = &resp
	}
	return st
}

// handleJobSubmit accepts the same body as /mine and answers 202 with
// the job's id. Identical in-flight submissions coalesce onto one
// execution; identical finished ones come back instantly from the
// cache (still 202 — poll the id for the result, which is already
// there).
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req mineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		decodeError(w, err)
		return
	}
	job, info, err := s.Jobs().Submit(mineConfig(req), jobs.SubmitOptions{
		Label:    "mine (async)",
		Timeout:  s.mineTimeout(req.TimeoutMs),
		Detached: true,
		Meta:     req.Limit,
		Deadline: submitDeadline(req.DeadlineMs),
	})
	if err != nil {
		submitError(w, err)
		return
	}
	loc := "/jobs/" + job.ID()
	w.Header().Set("Location", loc)
	writeJSON(w, http.StatusAccepted, jobSubmitResponse{
		ID:        job.ID(),
		State:     job.Snapshot().State,
		Coalesced: info.Coalesced,
		Cached:    info.Cached,
		Location:  loc,
	})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	snaps := s.Jobs().List()
	out := make([]jobStatus, len(snaps))
	for i, snap := range snaps {
		out[i] = renderJob(snap)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{Jobs: out})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Jobs().Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, renderJob(job.Snapshot()))
}

// handleJobCancel cancels a queued or running job through its runctl
// controller; the job lands in state canceled with a degradation
// report and whatever partial result the pipeline unwound into.
// Canceling an already-finished job is an idempotent no-op.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Jobs().Cancel(id) {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	job, ok := s.Jobs().Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, renderJob(job.Snapshot()))
}
