package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/jobs"
	"graphsig/internal/runctl"
)

// fakeServer builds a server over a small database with an injected
// mine executor, so job tests are fast and executions are countable.
func fakeServer(t *testing.T, exec jobs.ExecFunc) (*httptest.Server, *Server) {
	t.Helper()
	d := chem.GenerateN(chem.AIDSSpec(), 10)
	s := New(d.Graphs)
	s.Logf = t.Logf
	s.mineFn = exec
	s.JobTTL = time.Minute
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		s.Close(ctx)
	})
	return srv, s
}

// benzeneResult is a small renderable mining result.
func benzeneResult() core.Result {
	g := chem.Benzene()
	return core.Result{
		Subgraphs: []core.Subgraph{{
			Graph:        g,
			VectorPValue: 0.01,
			Support:      5,
			Frequency:    0.5,
		}},
		VectorsMined: 1,
	}
}

// TestJobsMineCoalescesConcurrentIdentical is the HTTP-level
// acceptance criterion: two identical concurrent POST /jobs/mine
// requests execute the pipeline exactly once.
func TestJobsMineCoalescesConcurrentIdentical(t *testing.T) {
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	srv, _ := fakeServer(t, func(ctl *runctl.Controller, cfg core.Config) core.Result {
		execs.Add(1)
		started <- struct{}{}
		<-release
		return benzeneResult()
	})

	body := mineRequest{Radius: 3, Limit: 5}
	ids := make([]string, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp jobSubmitResponse
			code := postJSON(t, srv.URL+"/jobs/mine", body, &resp)
			if code != http.StatusAccepted {
				t.Errorf("submit %d: status %d; want 202", i, code)
			}
			ids[i] = resp.ID
		}(i)
	}
	wg.Wait()
	<-started
	close(release)
	if ids[0] != ids[1] {
		t.Fatalf("identical submissions got distinct jobs %q vs %q", ids[0], ids[1])
	}

	// Poll until done; the single execution's result is visible.
	var st jobStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + ids[0])
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != jobs.StateDone || st.Result == nil || len(st.Result.Patterns) != 1 {
		t.Errorf("final status = %+v", st)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("pipeline executed %d times for 2 identical concurrent requests; want exactly 1", got)
	}
}

// TestJobCancelLifecycle: submit → running with progress → DELETE →
// canceled with a degradation report.
func TestJobCancelLifecycle(t *testing.T) {
	started := make(chan struct{}, 1)
	srv, _ := fakeServer(t, func(ctl *runctl.Controller, cfg core.Config) core.Result {
		started <- struct{}{}
		cp := ctl.Checkpoint(runctl.StageFVMine)
		for {
			if err := cp.Force(); err != nil {
				return core.Result{Truncated: true}
			}
			time.Sleep(time.Millisecond)
		}
	})

	var sub jobSubmitResponse
	if code := postJSON(t, srv.URL+"/jobs/mine", mineRequest{Radius: 3}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	<-started

	// Running, with live runctl progress.
	var running jobStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := http.Get(srv.URL + sub.Location)
		json.NewDecoder(resp.Body).Decode(&running)
		resp.Body.Close()
		if running.State == jobs.StateRunning && running.Progress.Checks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed running progress: %+v", running)
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	var final jobStatus
	for {
		r2, _ := http.Get(srv.URL + "/jobs/" + sub.ID)
		json.NewDecoder(r2.Body).Decode(&final)
		r2.Body.Close()
		if final.State.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled job stuck in %s", final.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.State != jobs.StateCanceled {
		t.Fatalf("state = %s; want canceled", final.State)
	}
	if final.Degradation == nil || final.Degradation.Reason != runctl.ReasonCancel {
		t.Errorf("degradation = %+v; want cancel reason", final.Degradation)
	}

	// Unknown ids 404 on GET and DELETE.
	r3, _ := http.Get(srv.URL + "/jobs/nope")
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job status %d", r3.StatusCode)
	}
	req4, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/nope", nil)
	r4, _ := http.DefaultClient.Do(req4)
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job status %d", r4.StatusCode)
	}
}

// TestSyncMineSharesCacheAndCoalescing: the synchronous /mine path
// rides the same dedup layer — an identical repeat request is served
// from cache without re-executing.
func TestSyncMineSharesCacheAndCoalescing(t *testing.T) {
	var execs atomic.Int64
	srv, _ := fakeServer(t, func(ctl *runctl.Controller, cfg core.Config) core.Result {
		execs.Add(1)
		return benzeneResult()
	})
	var first, second mineResponse
	if code := postJSON(t, srv.URL+"/mine", mineRequest{Radius: 3}, &first); code != http.StatusOK {
		t.Fatalf("first mine status %d", code)
	}
	if code := postJSON(t, srv.URL+"/mine", mineRequest{Radius: 3}, &second); code != http.StatusOK {
		t.Fatalf("second mine status %d", code)
	}
	if execs.Load() != 1 {
		t.Fatalf("identical sequential /mine executed %d times; want 1", execs.Load())
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags: first=%v second=%v; want false/true", first.Cached, second.Cached)
	}
	if len(second.Patterns) != 1 || second.Patterns[0].SMILES == "" {
		t.Errorf("cached response patterns = %+v", second.Patterns)
	}
	// The async endpoint shares the same cache.
	var sub jobSubmitResponse
	if code := postJSON(t, srv.URL+"/jobs/mine", mineRequest{Radius: 3}, &sub); code != http.StatusAccepted {
		t.Fatalf("async submit status %d", code)
	}
	if !sub.Cached {
		t.Error("async submit after sync mine missed the shared cache")
	}
	if execs.Load() != 1 {
		t.Errorf("executions after cache hit = %d", execs.Load())
	}
}

// TestMineEmptyPatternsIsArray: a mine with nothing to report renders
// "patterns":[] — never null (satellite fix).
func TestMineEmptyPatternsIsArray(t *testing.T) {
	srv, _ := fakeServer(t, func(ctl *runctl.Controller, cfg core.Config) core.Result {
		return core.Result{} // nothing mined
	})
	resp, err := http.Post(srv.URL+"/mine", "application/json", strings.NewReader(`{"radius":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `"patterns":[]`) {
		t.Errorf("empty mine body = %s; want patterns:[]", raw)
	}
	if strings.Contains(string(raw), "null") {
		t.Errorf("empty mine body contains null: %s", raw)
	}
}

// TestStatsExposesJobCounters: /stats carries queue, worker, and cache
// counters from the jobs subsystem.
func TestStatsExposesJobCounters(t *testing.T) {
	srv, _ := fakeServer(t, func(ctl *runctl.Controller, cfg core.Config) core.Result {
		return benzeneResult()
	})
	postJSON(t, srv.URL+"/mine", mineRequest{Radius: 3}, nil)
	postJSON(t, srv.URL+"/mine", mineRequest{Radius: 3}, nil) // cache hit
	var stats statsResponse
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	js := stats.Jobs
	if js.Workers == 0 || js.QueueCap == 0 {
		t.Errorf("job stats shape: %+v", js)
	}
	if js.Executions != 1 || js.CacheHits != 1 || js.CacheMisses != 1 {
		t.Errorf("job counters: %+v", js)
	}
}

// TestQueueFullReturns503: sync and async mining both surface queue
// backpressure as 503 with depth info.
func TestQueueFullReturns503(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	d := chem.GenerateN(chem.AIDSSpec(), 10)
	s := New(d.Graphs)
	s.Logf = t.Logf
	s.JobWorkers = 1
	s.JobQueueDepth = 1
	s.mineFn = func(ctl *runctl.Controller, cfg core.Config) core.Result {
		started <- struct{}{}
		<-release
		return core.Result{}
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		close(release)
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		s.Close(ctx)
	})

	if code := postJSON(t, srv.URL+"/jobs/mine", mineRequest{Radius: 2}, nil); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	<-started // worker busy; queue empty
	if code := postJSON(t, srv.URL+"/jobs/mine", mineRequest{Radius: 3}, nil); code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	body, err := json.Marshal(mineRequest{Radius: 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/jobs/mine", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit status %d; want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("queue-full 503 is missing the Retry-After header")
	}
	var errBody submitErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !strings.Contains(errBody.Error, "queue full") {
		t.Errorf("overflow error = %q", errBody.Error)
	}
	if errBody.Reason != "queue_full" || errBody.QueueCap != 1 || errBody.QueueDepth != 1 || errBody.RetryAfterMs <= 0 {
		t.Errorf("structured overflow body = %+v", errBody)
	}
}

// TestDeadlineShedReturns503: a submission whose deadline the expected
// queue wait already exceeds is shed with 503, Retry-After, and the
// admission controller's wait estimate in the body.
func TestDeadlineShedReturns503(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	d := chem.GenerateN(chem.AIDSSpec(), 10)
	s := New(d.Graphs)
	s.Logf = t.Logf
	s.JobWorkers = 1
	s.JobQueueDepth = 8
	s.mineFn = func(ctl *runctl.Controller, cfg core.Config) core.Result {
		// Real elapsed time: the EWMA the admission controller keeps is
		// measured, so a no-op executor would never produce a wait
		// estimate above anyone's deadline.
		time.Sleep(25 * time.Millisecond)
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return core.Result{}
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		close(release)
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		s.Close(ctx)
	})

	// Seed the admission controller's run-time estimate: with no history
	// it never sheds, so record one completed run first.
	if code := postJSON(t, srv.URL+"/jobs/mine", mineRequest{Radius: 2}, nil); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	<-started
	release <- struct{}{}
	deadline := time.Now().Add(5 * time.Second)
	for s.Jobs().Stats().Busy != 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never finished")
		}
		time.Sleep(time.Millisecond)
	}

	// Occupy the worker and stack the queue so the expected wait for a
	// new job is several average run-times.
	if code := postJSON(t, srv.URL+"/jobs/mine", mineRequest{Radius: 3}, nil); code != http.StatusAccepted {
		t.Fatalf("busy submit status %d", code)
	}
	<-started
	for r := 4; r <= 6; r++ {
		if code := postJSON(t, srv.URL+"/jobs/mine", mineRequest{Radius: r}, nil); code != http.StatusAccepted {
			t.Fatalf("queue submit radius=%d status %d", r, code)
		}
	}

	body, err := json.Marshal(mineRequest{Radius: 7, DeadlineMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/jobs/mine", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit status %d; want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("deadline 503 is missing the Retry-After header")
	}
	var errBody submitErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if errBody.Reason != "deadline" || errBody.ExpectedWaitMs <= 0 {
		t.Errorf("structured shed body = %+v", errBody)
	}
	if got := s.Jobs().Stats().Shed; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestClientJobHelpers round-trips submit/poll/wait/cancel through the
// typed client.
func TestClientJobHelpers(t *testing.T) {
	var execs atomic.Int64
	srv, _ := fakeServer(t, func(ctl *runctl.Controller, cfg core.Config) core.Result {
		execs.Add(1)
		return benzeneResult()
	})
	c := NewClient(srv.URL)

	id, coalesced, cached, err := c.SubmitMine(MineOptions{Radius: 3, Limit: 5})
	if err != nil || coalesced || cached {
		t.Fatalf("SubmitMine: id=%q coalesced=%v cached=%v err=%v", id, coalesced, cached, err)
	}
	j, err := c.WaitJob(id, 5*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != jobs.StateDone || len(j.Patterns) != 1 || j.Patterns[0].Graph == nil {
		t.Errorf("waited job = %+v", j)
	}

	// Resubmit: cache hit, instantly done.
	_, _, cached2, err := c.SubmitMine(MineOptions{Radius: 3})
	if err != nil || !cached2 {
		t.Errorf("resubmit cached=%v err=%v", cached2, err)
	}

	list, err := c.Jobs()
	if err != nil || len(list) < 2 {
		t.Errorf("Jobs() = %d entries, err=%v", len(list), err)
	}

	// MineAsync convenience end to end (third distinct config).
	patterns, truncated, err := c.MineAsync(MineOptions{Radius: 5}, 5*time.Millisecond, 5*time.Second)
	if err != nil || truncated || len(patterns) != 1 {
		t.Errorf("MineAsync: %d patterns truncated=%v err=%v", len(patterns), truncated, err)
	}

	if _, err := c.Job("nope"); err == nil {
		t.Error("Job on unknown id returned no error")
	}
	if _, err := c.CancelJob("nope"); err == nil {
		t.Error("CancelJob on unknown id returned no error")
	}
}

// TestWarmBuildsLazyModels: Warm constructs the query index and RWR
// vectors so first requests skip the cold start.
func TestWarmBuildsLazyModels(t *testing.T) {
	d := chem.GenerateN(chem.AIDSSpec(), 30)
	s := New(d.Graphs)
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	built := s.index != nil
	s.mu.Unlock()
	if !built {
		t.Error("Warm did not build the query index")
	}
	if vecs, err := s.lazyVectors(); err != nil || vecs == nil {
		t.Errorf("Warm did not build the RWR vectors (err=%v)", err)
	}
	// Idempotent.
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyInitConcurrentFirstHit drives the lazyIndex/vecOnce paths
// from many goroutines at once; the race detector guards the
// first-hit construction, and every caller must observe the same
// built artifacts.
func TestLazyInitConcurrentFirstHit(t *testing.T) {
	d := chem.GenerateN(chem.AIDSSpec(), 30)
	s := New(d.Graphs)
	const n = 8
	indexes := make([]any, n)
	vectors := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, err := s.lazyIndex()
			if err != nil {
				t.Error(err)
			}
			indexes[i] = idx
			vecs, err := s.lazyVectors()
			if err != nil {
				t.Error(err)
			}
			vectors[i] = len(vecs)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if indexes[i] != indexes[0] {
			t.Fatalf("goroutine %d saw a different index instance", i)
		}
		if vectors[i] != vectors[0] {
			t.Fatalf("goroutine %d saw %d vectors; first saw %d", i, vectors[i], vectors[0])
		}
	}
	if vectors[0] == 0 {
		t.Error("no vectors built")
	}
}
