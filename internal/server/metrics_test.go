package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/jobs"
	"graphsig/internal/obs"
)

// metricsServer is like testServer but keeps the *Server so tests can
// reach the registry directly when cross-checking the scraped values.
func metricsServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	d := chem.GenerateN(chem.AIDSSpec(), 120)
	s := New(d.Graphs)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, s
}

// scrapeProm GETs /metrics and parses the Prometheus text format into
// a series→value map, verifying the content type and TYPE lines along
// the way.
func scrapeProm(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// scrapeVars GETs /debug/vars and decodes the JSON snapshot.
func scrapeVars(t *testing.T, base string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// mineStages are the six pipeline stages every full mine must report.
var mineStages = []string{"features", "rwr", "fvmine", "group", "group-mine", "verify"}

// TestMetricsEndpoints drives a full /jobs/mine round trip and checks
// that both exposition formats move in lockstep: all six mining stages
// report balanced span counts, the jobs cache books a miss then a hit,
// and the HTTP layer records the requests it served.
func TestMetricsEndpoints(t *testing.T) {
	srv, s := metricsServer(t)

	before := scrapeVars(t, srv.URL)
	for _, st := range mineStages {
		if got := before.CounterValue(obs.MStageStarted, "stage", st); got != 0 {
			t.Errorf("stage %s started %d spans before any mine", st, got)
		}
	}
	if len(scrapeProm(t, srv.URL)) == 0 {
		t.Fatal("empty /metrics before mining; want at least the db gauge")
	}

	// Round trip one async mine: submit, then poll to completion.
	body := map[string]any{"radius": 3, "timeoutMs": 60000}
	var sub jobSubmitResponse
	if code := postJSON(t, srv.URL+"/jobs/mine", body, &sub); code != http.StatusAccepted {
		t.Fatalf("POST /jobs/mine = %d", code)
	}
	if sub.Cached || sub.Coalesced {
		t.Fatalf("first submit reported cached=%v coalesced=%v", sub.Cached, sub.Coalesced)
	}
	waitForJob(t, srv.URL, sub.ID)
	// The finished job's result enters the cache just after the state
	// flips; wait for the cache gauge so the cached-path assertions
	// below cannot race the tail of the run.
	waitForGauge(t, srv.URL, obs.MJobsCacheSize, 1)

	snap := scrapeVars(t, srv.URL)
	prom := scrapeProm(t, srv.URL)
	for _, st := range mineStages {
		started := snap.CounterValue(obs.MStageStarted, "stage", st)
		completed := snap.CounterValue(obs.MStageCompleted, "stage", st)
		degraded := snap.CounterValue(obs.MStageDegraded, "stage", st)
		if started < 1 {
			t.Errorf("stage %s never started", st)
		}
		if started != completed+degraded {
			t.Errorf("stage %s unbalanced: started %d != completed %d + degraded %d",
				st, started, completed, degraded)
		}
		hs, ok := snap.HistogramValue(obs.MStageDuration, "stage", st)
		if !ok || hs.Count != started {
			t.Errorf("stage %s duration histogram count = %d, want %d", st, hs.Count, started)
		}
		// The same series through the other format must agree.
		promName := obs.SeriesName(obs.MStageStarted, "stage", st)
		if int64(prom[promName]) != started {
			t.Errorf("%s: prom %v != vars %d", promName, prom[promName], started)
		}
	}
	if got := snap.CounterValue(obs.MJobsExecutions); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	if got := snap.CounterValue(obs.MJobsCacheMisses); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
	if got := snap.CounterValue(obs.MJobsCacheHits); got != 0 {
		t.Errorf("cache hits = %d, want 0", got)
	}
	if got := snap.CounterValue(obs.MJobsFinished, "state", string(jobs.StateDone)); got != 1 {
		t.Errorf("finished{done} = %d, want 1", got)
	}
	if got := snap.GaugeValue(obs.MJobsWorkers); got < 1 {
		t.Errorf("workers gauge = %d", got)
	}
	if got := snap.GaugeValue(obs.MDBGraphs); got != 120 {
		t.Errorf("db graphs gauge = %d, want 120", got)
	}
	if hs, ok := snap.HistogramValue(obs.MJobsRunSeconds); !ok || hs.Count != 1 {
		t.Errorf("run-seconds histogram count != 1 (ok=%v)", ok)
	}

	// An identical resubmit must come back cached — and book a cache
	// hit, not a miss, with no new execution.
	var sub2 jobSubmitResponse
	if code := postJSON(t, srv.URL+"/jobs/mine", body, &sub2); code != http.StatusAccepted {
		t.Fatalf("second POST /jobs/mine = %d", code)
	}
	if !sub2.Cached {
		t.Fatal("second identical submit was not cached")
	}
	after := scrapeVars(t, srv.URL)
	if got := after.CounterValue(obs.MJobsCacheHits); got != 1 {
		t.Errorf("cache hits after cached submit = %d, want 1", got)
	}
	if got := after.CounterValue(obs.MJobsCacheMisses); got != 1 {
		t.Errorf("cache misses after cached submit = %d, want 1 (unchanged)", got)
	}
	if got := after.CounterValue(obs.MJobsExecutions); got != 1 {
		t.Errorf("executions after cached submit = %d, want 1 (unchanged)", got)
	}

	// The HTTP layer itself: both submits were recorded with their
	// final status under the normalized route, and scraping /metrics is
	// itself metered.
	if got := after.CounterValue(obs.MHTTPRequests, "route", "POST /jobs/mine", "code", "202"); got != 2 {
		t.Errorf(`http requests {POST /jobs/mine, 202} = %d, want 2`, got)
	}
	if got := after.CounterValue(obs.MHTTPRequests, "route", "GET /metrics", "code", "200"); got < 1 {
		t.Errorf("http requests {GET /metrics, 200} = %d, want >= 1", got)
	}
	if hs, ok := after.HistogramValue(obs.MHTTPDuration, "route", "POST /jobs/mine"); !ok || hs.Count != 2 {
		t.Errorf("http duration {POST /jobs/mine} count = %d, want 2 (ok=%v)", hs.Count, ok)
	}
	// This snapshot was taken from inside a live /debug/vars request.
	if got := after.GaugeValue(obs.MHTTPInFlight); got < 1 {
		t.Errorf("in-flight gauge from inside a request = %d, want >= 1", got)
	}

	// The registry the handlers serve is the server's own.
	if got := s.Metrics.Snapshot().CounterValue(obs.MJobsExecutions); got != 1 {
		t.Errorf("server registry executions = %d, want 1", got)
	}
}

func waitForJob(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == jobs.StateDone {
			return
		}
		if st.State == jobs.StateFailed || st.State == jobs.StateCanceled {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}

func waitForGauge(t *testing.T, base, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if scrapeVars(t, base).GaugeValue(name) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("gauge %s never reached %d", name, want)
}

// TestPprofGating: the profiling tree is absent by default and mounted
// by EnablePprof.
func TestPprofGating(t *testing.T) {
	srv, _ := metricsServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag = %d, want 404", resp.StatusCode)
	}

	d := chem.GenerateN(chem.AIDSSpec(), 10)
	s := New(d.Graphs)
	s.EnablePprof = true
	srv2 := httptest.NewServer(s.Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof with flag = %d, want 200", resp2.StatusCode)
	}
}

// TestNormalizeRoute pins the closed route-label set.
func TestNormalizeRoute(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"POST", "/mine", "POST /mine"},
		{"GET", "/metrics", "GET /metrics"},
		{"GET", "/debug/vars", "GET /debug/vars"},
		{"POST", "/jobs/mine", "POST /jobs/mine"},
		{"GET", "/jobs", "GET /jobs"},
		{"GET", "/jobs/j-123", "GET /jobs/{id}"},
		{"DELETE", "/jobs/whatever", "DELETE /jobs/{id}"},
		{"GET", "/debug/pprof/heap", "GET /debug/pprof"},
		{"GET", "/nonexistent", "other"},
		{"GET", "/jobs/a/b/c", "GET /jobs/{id}"},
	}
	for _, tc := range cases {
		if got := normalizeRoute(tc.method, tc.path); got != tc.want {
			t.Errorf("normalizeRoute(%s, %s) = %q, want %q", tc.method, tc.path, got, tc.want)
		}
	}
}
