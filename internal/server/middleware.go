package server

import (
	"log"
	"net/http"
	"runtime/debug"
)

// recoverPanics converts a handler panic into a 500 instead of killing
// the serving goroutine's connection without a response (and, for
// panics reaching the top of the goroutine stack, the whole process).
// http.ErrAbortHandler is re-raised: it is net/http's sanctioned way to
// abort a response.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			stack := debug.Stack()
			if len(stack) > 4096 {
				stack = stack[:4096]
			}
			log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, stack)
			// The header may already be out; WriteHeader then just logs a
			// superfluous-call warning instead of corrupting the stream.
			httpError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// limitConcurrency admits at most n requests at a time and answers 503
// immediately when saturated — bounded queueing beats unbounded memory
// growth under a mining workload where one request can pin a core for
// seconds.
func limitConcurrency(n int, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "server busy: %d requests in flight", n)
		}
	})
}

// capRequestBody bounds request bodies to max bytes; oversized bodies
// make json decoding fail with a 400/413 instead of buffering
// arbitrarily.
func capRequestBody(max int64, next http.Handler) http.Handler {
	if max <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		next.ServeHTTP(w, r)
	})
}
