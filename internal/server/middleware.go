package server

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"graphsig/internal/obs"
)

// instrumentHTTP records every request into the registry: a running
// in-flight gauge, a per-route/status request counter, and a per-route
// latency histogram. It wraps the whole middleware stack so rejections
// produced inside it (503 from the concurrency limit, 500 from panic
// recovery) are booked with the status the client actually saw. Routes
// are normalized to a closed set before becoming label values, so
// request paths can never mint unbounded series.
func instrumentHTTP(reg *obs.Registry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	inFlight := reg.Gauge(obs.MHTTPInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := normalizeRoute(r.Method, r.URL.Path)
		inFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			inFlight.Add(-1)
			reg.Histogram(obs.MHTTPDuration, obs.DefBuckets, "route", route).
				ObserveDuration(time.Since(start))
			reg.Counter(obs.MHTTPRequests, "route", route, "code", fmt.Sprintf("%d", rec.status)).Inc()
		}()
		next.ServeHTTP(rec, r)
	})
}

// statusRecorder captures the status code written by the handler chain
// (200 if the handler never calls WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wroteHeader {
		s.status = code
		s.wroteHeader = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	s.wroteHeader = true
	return s.ResponseWriter.Write(b)
}

// normalizeRoute maps a request onto the closed route-label set. Known
// endpoints keep their pattern (job ids collapse to /jobs/{id}), the
// pprof tree collapses to one label, and everything else — including
// 404 probes — becomes "other".
func normalizeRoute(method, path string) string {
	switch path {
	case "/healthz", "/stats", "/mine", "/query", "/significance",
		"/metrics", "/debug/vars", "/jobs/mine", "/jobs":
		return method + " " + path
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return method + " /debug/pprof"
	}
	if strings.HasPrefix(path, "/jobs/") {
		return method + " /jobs/{id}"
	}
	return "other"
}

// recoverPanics converts a handler panic into a 500 instead of killing
// the serving goroutine's connection without a response (and, for
// panics reaching the top of the goroutine stack, the whole process).
// http.ErrAbortHandler is re-raised: it is net/http's sanctioned way to
// abort a response.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			stack := debug.Stack()
			if len(stack) > 4096 {
				stack = stack[:4096]
			}
			log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, stack)
			// The header may already be out; WriteHeader then just logs a
			// superfluous-call warning instead of corrupting the stream.
			httpError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// limitConcurrency admits at most n requests at a time and answers 503
// immediately when saturated — bounded queueing beats unbounded memory
// growth under a mining workload where one request can pin a core for
// seconds.
func limitConcurrency(n int, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "server busy: %d requests in flight", n)
		}
	})
}

// capRequestBody bounds request bodies to max bytes; oversized bodies
// make json decoding fail with a 400/413 instead of buffering
// arbitrarily.
func capRequestBody(max int64, next http.Handler) http.Handler {
	if max <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		next.ServeHTTP(w, r)
	})
}
