package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/runctl"
)

func TestRecoverPanicsReturns500(t *testing.T) {
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil)) // must not crash the test process
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d; want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestRecoverPanicsReraisesAbortHandler(t *testing.T) {
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("http.ErrAbortHandler swallowed; net/http relies on it propagating")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	t.Error("unreachable: panic expected")
}

func TestLimitConcurrencyRejectsWhenSaturated(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	h := limitConcurrency(1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release // closed after the saturation probe; later requests pass straight through
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/a", nil))
	}()
	<-entered // the single slot is now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/b", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("saturated status = %d; want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	close(release)
	wg.Wait()

	// Slot free again: admitted.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/c", nil))
	if rec2.Code != http.StatusOK {
		t.Errorf("post-release status = %d; want 200", rec2.Code)
	}
}

func TestBodyCapRejectsOversizedRequest(t *testing.T) {
	d := chem.GenerateN(chem.AIDSSpec(), 10)
	s := New(d.Graphs)
	s.MaxBodyBytes = 64
	h := s.Handler()

	big := `{"maxPvalue":0.1,"padding":"` + strings.Repeat("x", 256) + `"}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/mine", bytes.NewReader([]byte(big))))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d; want 413", rec.Code)
	}

	// Small bodies still pass the cap (the mine itself may be slow, so
	// use /query which is cheap).
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("POST", "/query", strings.NewReader(`{"smiles":"CC"}`)))
	if rec2.Code != http.StatusOK {
		t.Errorf("small body status = %d; want 200", rec2.Code)
	}
}

// TestMineCanceledByClientDisconnect exercises the acceptance criterion
// that a dropped client cancels the mine: a request whose context is
// already canceled must come back immediately with a degradation report
// naming cancellation, not run the full mine.
func TestMineCanceledByClientDisconnect(t *testing.T) {
	d := chem.GenerateN(chem.AIDSSpec(), 60)
	s := New(d.Graphs)
	var logged []string
	s.Logf = func(format string, args ...any) {
		logged = append(logged, format)
	}
	h := s.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest("POST", "/mine", strings.NewReader(`{"timeoutMs":60000}`)).WithContext(ctx)

	t0 := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if el := time.Since(t0); el > 2*time.Second {
		t.Errorf("canceled mine took %s; cancellation not observed promptly", el)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp mineResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("canceled mine not flagged truncated")
	}
	if resp.Degraded == nil {
		t.Fatal("no degradation report on canceled mine")
	}
	if resp.Degraded.Reason != runctl.ReasonCancel {
		t.Errorf("degradation reason = %q; want %q", resp.Degraded.Reason, runctl.ReasonCancel)
	}
	if len(logged) == 0 {
		t.Error("degraded mine not logged server-side")
	}
}

// TestMineDeadlineDegradation checks that a tiny per-request timeout
// produces a valid response with a deadline degradation report.
func TestMineDeadlineDegradation(t *testing.T) {
	srv, _ := testServer(t)
	var resp mineResponse
	code := postJSON(t, srv.URL+"/mine", mineRequest{TimeoutMs: 1}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Truncated {
		t.Fatal("1ms mine not truncated")
	}
	if resp.Degraded == nil || resp.Degraded.Reason != runctl.ReasonDeadline {
		t.Errorf("degradation = %+v; want deadline reason", resp.Degraded)
	}
}
