// Package server exposes a loaded chemical screen over HTTP: significant-
// subgraph mining, indexed substructure search, and single-pattern
// significance evaluation. Molecules cross the wire as SMILES; everything
// else is JSON. The server is read-only over its database and safe for
// concurrent requests.
//
//	POST /mine          {"maxPvalue":0.1,"minFreqPct":0.1,"radius":4,"topK":0,"timeoutMs":30000}
//	POST /query         {"smiles":"c1ccccc1"}
//	POST /significance  {"smiles":"[Sb](O)(O)O"}
//	POST /jobs/mine     same body as /mine; answers 202 + a job id
//	GET  /jobs          list live jobs
//	GET  /jobs/{id}     job status, progress, and (when finished) result
//	DELETE /jobs/{id}   cancel a queued or running job
//	GET  /stats
//	GET  /healthz
//
// Mining — synchronous and asynchronous alike — runs through the jobs
// subsystem (internal/jobs): identical concurrent requests coalesce
// into one execution, identical repeat requests hit a result cache,
// and every run is bounded by a per-job runctl controller.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/gindex"
	"graphsig/internal/graph"
	"graphsig/internal/jobs"
	"graphsig/internal/journal"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
	"graphsig/internal/rwr"
	"graphsig/internal/shard"
	"graphsig/internal/store"
)

// Operational defaults; override the Server fields before Handler().
const (
	// DefaultMaxConcurrent bounds simultaneously served requests.
	DefaultMaxConcurrent = 64
	// DefaultMaxBodyBytes caps request bodies.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMineTimeout applies when a /mine request names none.
	DefaultMineTimeout = 30 * time.Second
	// DefaultMineTimeoutCap clamps client-requested mine timeouts so a
	// request cannot pin a worker past the server's write timeout.
	DefaultMineTimeoutCap = 2 * time.Minute
)

// Server answers mining and search requests over one immutable database.
type Server struct {
	// db is the in-memory corpus (New). Store-backed servers
	// (NewFromStore) leave it nil and serve mining lazily through the
	// segment reader; the auxiliary read models (/query, /significance)
	// materialize the corpus on first use via database().
	db    []*graph.Graph
	alpha *graph.Alphabet

	// reader and coord are set on store-backed servers: the lazy
	// segment reader and the scatter-gather mining coordinator.
	reader *store.Reader
	coord  *shard.Coordinator

	// MaxConcurrent bounds simultaneously served requests; excess
	// requests get an immediate 503 (0 = unbounded).
	MaxConcurrent int
	// MaxBodyBytes caps request body size (0 = unbounded).
	MaxBodyBytes int64
	// MineTimeout is the default /mine deadline when the request names
	// none; MineTimeoutCap clamps what a request may ask for.
	MineTimeout    time.Duration
	MineTimeoutCap time.Duration
	// MineBudgets bounds per-stage mining work for every /mine request
	// (zero fields = unbounded).
	MineBudgets runctl.Budgets
	// JobWorkers, JobQueueDepth, JobTTL, and JobCacheSize configure the
	// jobs subsystem (zero = the internal/jobs defaults). Set them
	// before the first request or Jobs() call.
	JobWorkers    int
	JobQueueDepth int
	JobTTL        time.Duration
	JobCacheSize  int
	// Journal, when non-nil, makes job lifecycles durable: submissions,
	// checkpoints, and outcomes are written through it, and
	// JournalReplay (the fold journal.Open returned) is re-enqueued or
	// surfaced on manager startup. The server does not own the journal;
	// close it after Close().
	Journal       *journal.Journal
	JournalReplay []journal.JobRecord
	// JobMaxRetries, JobRetryBackoff, JobStallTimeout, and
	// JobCheckpointEvery configure the durability layer (zero = the
	// internal/jobs defaults: no retries, no watchdog).
	JobMaxRetries      int
	JobRetryBackoff    time.Duration
	JobStallTimeout    time.Duration
	JobCheckpointEvery int
	// Logf receives operational log lines (degraded mines, panics);
	// log.Printf when nil.
	Logf func(format string, args ...any)
	// Metrics is the server's observability registry, served at
	// GET /metrics (Prometheus text) and GET /debug/vars (JSON) and
	// shared with the jobs subsystem and every per-job mining
	// controller. New() installs a fresh registry; replace it before
	// the first request or Jobs() call, or set nil to disable.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose stacks and timings, so they
	// are opt-in (cmd/serve -pprof).
	EnablePprof bool

	mu    sync.Mutex
	index *gindex.Index // built lazily on the first /query

	vecOnce sync.Once
	vectors []rwr.NodeVector // built lazily on the first /significance
	vecCfg  core.Config

	jobsOnce sync.Once
	jobsMgr  *jobs.Manager
	// mineFn overrides the job executor (tests count executions or
	// inject blocking fakes); nil = core.Mine over the database.
	mineFn jobs.ExecFunc
}

// New creates a server over db. Node labels must follow the standard
// chemistry alphabet (datagen output or SMILES input qualify).
func New(db []*graph.Graph) *Server {
	s := &Server{
		db:             db,
		alpha:          chem.Alphabet(),
		vecCfg:         core.Defaults(),
		MaxConcurrent:  DefaultMaxConcurrent,
		MaxBodyBytes:   DefaultMaxBodyBytes,
		MineTimeout:    DefaultMineTimeout,
		MineTimeoutCap: DefaultMineTimeoutCap,
		Metrics:        obs.NewRegistry(),
	}
	s.Metrics.Gauge(obs.MDBGraphs).Set(int64(len(db)))
	return s
}

// StoreOptions configures NewFromStore.
type StoreOptions struct {
	// Shards is the scatter-gather partition count (minimum 1).
	Shards int
	// Strategy maps graph positions to shards (default shard.Hash, so
	// incremental appends keep unchanged shards' caches warm).
	Strategy shard.Strategy
	// CachedSegments bounds the reader's decoded-segment LRU
	// (0 = store.DefaultCachedSegments).
	CachedSegments int
}

// NewFromStore creates a server over a persistent segment store built
// by store.Build / `graphsig store build`. The corpus is served lazily
// — mining streams shard by shard through the reader's segment LRU, so
// a database larger than RAM is servable — and mining scatter-gathers
// across opts.Shards shards with results byte-identical to an
// unsharded in-memory mine. The store's fingerprint and generation
// scope every job cache key, so results cached before an append can
// never be served after it.
func NewFromStore(dir string, opts StoreOptions) (*Server, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	reg := obs.NewRegistry()
	r, err := store.Open(dir, store.Options{CachedSegments: opts.CachedSegments, Metrics: reg})
	if err != nil {
		return nil, err
	}
	strategy := opts.Strategy
	if strategy == 0 {
		strategy = shard.Hash
	}
	coord, err := shard.New(r, shard.Options{
		Shards:      opts.Shards,
		Strategy:    strategy,
		Fingerprint: r.Fingerprint(),
		Metrics:     reg,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		alpha:          chem.Alphabet(),
		reader:         r,
		coord:          coord,
		vecCfg:         core.Defaults(),
		MaxConcurrent:  DefaultMaxConcurrent,
		MaxBodyBytes:   DefaultMaxBodyBytes,
		MineTimeout:    DefaultMineTimeout,
		MineTimeoutCap: DefaultMineTimeoutCap,
		Metrics:        reg,
	}
	s.Metrics.Gauge(obs.MDBGraphs).Set(int64(r.Len()))
	return s, nil
}

// Store reports the backing store's generation, graph count, and
// scatter-gather shard width; ok is false on in-memory servers.
func (s *Server) Store() (generation int64, graphs, shards int, ok bool) {
	if s.reader == nil {
		return 0, 0, 0, false
	}
	return s.reader.Generation(), s.reader.Len(), s.coord.Shards(), true
}

// database returns the full in-memory corpus, materializing it from
// the store on first use. The mining path never calls this — it
// streams through the shard coordinator — but the auxiliary read
// models (substructure index, database RWR vectors) operate on the
// whole corpus and pay the materialization once, on first demand.
func (s *Server) database() ([]*graph.Graph, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.db == nil && s.reader != nil {
		db, err := s.reader.Graphs()
		if err != nil {
			return nil, err
		}
		s.db = db
	}
	return s.db, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Handler returns the HTTP handler: the endpoint mux behind the
// hardening middleware, all behind the HTTP metrics wrapper —
// instrumentation is outermost so 503s from the concurrency limit and
// 500s from recovered panics are recorded with their final status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /mine", s.handleMine)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /significance", s.handleSignificance)
	mux.HandleFunc("POST /jobs/mine", s.handleJobSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	if s.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return instrumentHTTP(s.Metrics,
		recoverPanics(limitConcurrency(s.MaxConcurrent, capRequestBody(s.MaxBodyBytes, mux))))
}

// handleMetrics serves the registry in Prometheus text exposition
// format: counters, gauges, and cumulative histogram buckets for every
// live series, deterministically ordered.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	s.Metrics.WritePrometheus(w)
}

// handleDebugVars serves a JSON snapshot of the same registry —
// expvar-style, but scoped to graphsig's own series.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics.Snapshot())
}

type statsResponse struct {
	Graphs   int     `json:"graphs"`
	AvgAtoms float64 `json:"avgAtoms"`
	AvgBonds float64 `json:"avgBonds"`
	// Generation and Shards are set on store-backed servers: the
	// manifest generation being served and the scatter-gather width.
	Generation int64 `json:"generation,omitempty"`
	Shards     int   `json:"shards,omitempty"`
	// Jobs carries the jobs-subsystem counters: queue depth, worker
	// utilization, cache hit rate, and job-state census.
	Jobs jobs.Stats `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Jobs: s.Jobs().Stats()}
	if s.reader != nil {
		// The manifest carries the corpus totals; answering from it
		// keeps /stats O(1) instead of materializing every segment.
		m := s.reader.Manifest()
		resp.Graphs = m.Graphs
		resp.Generation = m.Generation
		resp.Shards = s.coord.Shards()
		if m.Graphs > 0 {
			resp.AvgAtoms = float64(m.Nodes) / float64(m.Graphs)
			resp.AvgBonds = float64(m.Edges) / float64(m.Graphs)
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// reader is nil on this path, so database() is just a locked read
	// of the in-memory corpus — it cannot fail.
	db, _ := s.database()
	atoms, bonds := 0, 0
	for _, g := range db {
		atoms += g.NumNodes()
		bonds += g.NumEdges()
	}
	resp.Graphs = len(db)
	if len(db) > 0 {
		resp.AvgAtoms = float64(atoms) / float64(len(db))
		resp.AvgBonds = float64(bonds) / float64(len(db))
	}
	writeJSON(w, http.StatusOK, resp)
}

type mineRequest struct {
	MaxPvalue  float64 `json:"maxPvalue"`
	MinFreqPct float64 `json:"minFreqPct"`
	Radius     int     `json:"radius"`
	TopK       int     `json:"topK"`
	TimeoutMs  int     `json:"timeoutMs"`
	Limit      int     `json:"limit"`
	// DeadlineMs, when > 0, is the client's tolerance for total
	// latency: admission control sheds the request with 503 +
	// Retry-After when the expected queue wait alone exceeds it.
	DeadlineMs int `json:"deadlineMs"`
}

// submitDeadline maps the client's latency tolerance onto an absolute
// admission deadline (zero time = no deadline, never shed).
func submitDeadline(deadlineMs int) time.Time {
	if deadlineMs <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(deadlineMs) * time.Millisecond)
}

type minedPattern struct {
	SMILES    string  `json:"smiles"`
	PValue    float64 `json:"pValue"`
	Support   int     `json:"support"`
	Frequency float64 `json:"frequency"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	// Unverified distinguishes "graph-space support unknown" (the
	// verification phase was skipped, tripped, or crashed) from a true
	// support of zero.
	Unverified bool `json:"unverified,omitempty"`
}

type mineResponse struct {
	Patterns  []minedPattern      `json:"patterns"`
	Truncated bool                `json:"truncated"`
	ElapsedMs int64               `json:"elapsedMs"`
	Cached    bool                `json:"cached,omitempty"`
	Degraded  *runctl.Degradation `json:"degradation,omitempty"`
}

// mineTimeout clamps the client-requested timeout into (0, cap]. The
// countdown starts when a worker picks the job up, so queue wait does
// not eat the mining budget.
func (s *Server) mineTimeout(timeoutMs int) time.Duration {
	d := s.MineTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if s.MineTimeoutCap > 0 && (d <= 0 || d > s.MineTimeoutCap) {
		d = s.MineTimeoutCap
	}
	if d < 0 {
		d = 0
	}
	return d
}

// mineConfig maps a request onto the mining parameters. Everything
// here is part of the job's dedup identity; presentation (Limit) and
// runtime limits (TimeoutMs) are deliberately not.
func mineConfig(req mineRequest) core.Config {
	cfg := core.Defaults()
	if req.MaxPvalue > 0 {
		cfg.MaxPvalue = req.MaxPvalue
	}
	if req.MinFreqPct > 0 {
		cfg.MinFreqPct = req.MinFreqPct
	}
	if req.Radius > 0 {
		cfg.CutoffRadius = req.Radius
	}
	cfg.TopKPerLabel = req.TopK
	return cfg
}

// Jobs returns the server's job manager, creating it on first use.
// Configure the Job* fields before the first call.
func (s *Server) Jobs() *jobs.Manager {
	s.jobsOnce.Do(func() {
		// Snapshot the corpus under mu: a concurrent request may be
		// materializing it in database() right now.
		s.mu.Lock()
		db := s.db
		s.mu.Unlock()
		exec := s.mineFn
		var fp string
		var gen int64
		if s.coord != nil {
			// Store-backed: jobs mine through the scatter-gather
			// coordinator instead of an in-memory core.Mine, and the
			// dedup key is scoped by the manifest fingerprint and
			// generation so results cached before an append can never be
			// served after it.
			fp = s.reader.Fingerprint()
			gen = s.reader.Generation()
			if exec == nil {
				workers := s.JobWorkers
				if workers <= 0 {
					workers = jobs.DefaultWorkers
				}
				share := runtime.GOMAXPROCS(0) / workers
				if share < 1 {
					share = 1
				}
				exec = func(ctl *runctl.Controller, cfg core.Config) core.Result {
					cfg.Ctl = ctl
					if cfg.Parallelism <= 0 {
						cfg.Parallelism = share
					}
					res, err := s.coord.Mine(cfg)
					if err != nil {
						// A store read failure voids the run; surface it
						// as a degraded (empty) result rather than a
						// panic so the job terminates cleanly.
						s.logf("server: sharded mine failed: %v", err)
						res.Truncated = true
						res.Degradation = runctl.Degradation{
							Truncated: true,
							Reason:    runctl.ReasonPanic,
							Detail:    fmt.Sprintf("store read failed: %v", err),
						}
					}
					return res
				}
			}
		}
		s.jobsMgr = jobs.NewManager(jobs.Options{
			DB:              db,
			DBFingerprint:   fp,
			Generation:      gen,
			Workers:         s.JobWorkers,
			QueueDepth:      s.JobQueueDepth,
			TTL:             s.JobTTL,
			CacheSize:       s.JobCacheSize,
			Budgets:         s.MineBudgets,
			Exec:            exec,
			Logf:            s.Logf,
			Metrics:         s.Metrics,
			Journal:         s.Journal,
			Replay:          s.JournalReplay,
			MaxRetries:      s.JobMaxRetries,
			RetryBackoff:    s.JobRetryBackoff,
			StallTimeout:    s.JobStallTimeout,
			CheckpointEvery: s.JobCheckpointEvery,
		})
	})
	return s.jobsMgr
}

// Close drains the jobs subsystem: running mines get until ctx is done
// to finish before being canceled into partial results. A server whose
// manager was never started closes immediately (the no-op Do claims
// the once, so a later Jobs() call cannot resurrect the pool).
func (s *Server) Close(ctx context.Context) error {
	s.jobsOnce.Do(func() {})
	if s.jobsMgr == nil {
		return nil
	}
	return s.jobsMgr.Shutdown(ctx)
}

// handleMine is the synchronous mining path. It routes through the
// same job queue, coalescing, and result cache as /jobs/mine: the
// handler submits (or attaches to) a job and waits. A client that
// disconnects releases its claim; when it was the last waiter the job
// is canceled through runctl and the partial result is still rendered
// for the benefit of connection-level buffering and tests.
func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	var req mineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		decodeError(w, err)
		return
	}
	t0 := time.Now()
	job, info, err := s.Jobs().Submit(mineConfig(req), jobs.SubmitOptions{
		Label:    "mine (sync)",
		Timeout:  s.mineTimeout(req.TimeoutMs),
		Deadline: submitDeadline(req.DeadlineMs),
	})
	if err != nil {
		submitError(w, err)
		return
	}
	released := false
	select {
	case <-job.Done():
	case <-r.Context().Done():
		released = true
		if s.Jobs().Release(job) {
			// We were the last waiter: the job is being canceled; wait
			// for the pipeline to unwind into its partial result.
			<-job.Done()
		} else {
			select {
			case <-job.Done():
			default:
				// Other waiters keep the job alive; this client is gone.
				return
			}
		}
	}
	if !released {
		s.Jobs().Release(job)
	}
	snap := job.Snapshot()
	if snap.State == jobs.StateFailed {
		httpError(w, http.StatusInternalServerError, "mine failed: %s", snap.Err)
		return
	}
	resp := renderMine(snap, req.Limit)
	resp.Cached = info.Cached
	resp.ElapsedMs = time.Since(t0).Milliseconds()
	if resp.Degraded != nil {
		s.logf("server: mine degraded after %s: %s", time.Since(t0).Round(time.Millisecond), resp.Degraded.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// renderMine shapes a finished job's result for the wire. Patterns is
// always an array, never null — an empty mine renders as [].
func renderMine(snap jobs.Snapshot, limit int) mineResponse {
	resp := mineResponse{Patterns: []minedPattern{}}
	if snap.Degradation != nil {
		resp.Truncated = true
		resp.Degraded = snap.Degradation
	}
	if snap.Result == nil {
		return resp
	}
	res := snap.Result
	resp.Truncated = res.Truncated || resp.Truncated
	if limit <= 0 || limit > len(res.Subgraphs) {
		limit = len(res.Subgraphs)
	}
	for _, sg := range res.Subgraphs[:limit] {
		smiles, err := chem.WriteSMILES(sg.Graph)
		if err != nil {
			continue
		}
		resp.Patterns = append(resp.Patterns, minedPattern{
			SMILES:     smiles,
			PValue:     sg.VectorPValue,
			Support:    sg.Support,
			Frequency:  sg.Frequency,
			Nodes:      sg.Graph.NumNodes(),
			Edges:      sg.Graph.NumEdges(),
			Unverified: sg.Unverified,
		})
	}
	return resp
}

// submitErrorBody is the structured 503 answer for rejected
// submissions: enough for a client to implement informed backoff
// without parsing prose.
type submitErrorBody struct {
	Error string `json:"error"`
	// Reason is machine-readable: "queue_full", "deadline", "shutdown".
	Reason string `json:"reason"`
	// RetryAfterMs mirrors the Retry-After header in milliseconds.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
	// QueueDepth/QueueCap are set on queue_full rejections.
	QueueDepth int `json:"queueDepth,omitempty"`
	QueueCap   int `json:"queueCap,omitempty"`
	// ExpectedWaitMs is set on deadline sheds: the admission
	// controller's queue-wait estimate that exceeded the deadline.
	ExpectedWaitMs int64 `json:"expectedWaitMs,omitempty"`
}

// retryAfterSeconds renders a backoff hint for the Retry-After header,
// rounding up so "wait 300ms" never becomes "retry immediately".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// submitError maps a Submit failure onto a status: overload rejections
// (queue full, deadline shed) answer 503 with a Retry-After header and
// a structured JSON body; shutdown answers 503 plain.
func submitError(w http.ResponseWriter, err error) {
	var full *jobs.ErrQueueFull
	if errors.As(err, &full) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, submitErrorBody{
			Error:        err.Error(),
			Reason:       "queue_full",
			RetryAfterMs: time.Second.Milliseconds(),
			QueueDepth:   full.Depth,
			QueueCap:     full.Cap,
		})
		return
	}
	var shed *jobs.ErrDeadline
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", retryAfterSeconds(shed.ExpectedWait))
		writeJSON(w, http.StatusServiceUnavailable, submitErrorBody{
			Error:          err.Error(),
			Reason:         "deadline",
			RetryAfterMs:   shed.ExpectedWait.Milliseconds(),
			ExpectedWaitMs: shed.ExpectedWait.Milliseconds(),
		})
		return
	}
	if errors.Is(err, jobs.ErrClosed) {
		writeJSON(w, http.StatusServiceUnavailable, submitErrorBody{
			Error:  "server shutting down",
			Reason: "shutdown",
		})
		return
	}
	httpError(w, http.StatusInternalServerError, "%v", err)
}

type smilesRequest struct {
	SMILES string `json:"smiles"`
}

type queryResponse struct {
	IDs     []int `json:"ids"`
	Support int   `json:"support"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	pattern, ok := s.decodeSMILES(w, r)
	if !ok {
		return
	}
	idx, err := s.lazyIndex()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "loading database: %v", err)
		return
	}
	ids := idx.Query(pattern)
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, http.StatusOK, queryResponse{IDs: ids, Support: len(ids)})
}

type significanceResponse struct {
	Support   int     `json:"support"`
	Frequency float64 `json:"frequency"`
	PValue    float64 `json:"pValue"`
	LogPValue float64 `json:"logPValue"`
}

func (s *Server) handleSignificance(w http.ResponseWriter, r *http.Request) {
	pattern, ok := s.decodeSMILES(w, r)
	if !ok {
		return
	}
	db, err := s.database()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "loading database: %v", err)
		return
	}
	vectors, err := s.lazyVectors()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "loading database: %v", err)
		return
	}
	stats := core.EvaluateSubgraph(db, vectors, pattern, s.vecCfg)
	writeJSON(w, http.StatusOK, significanceResponse{
		Support:   stats.Support,
		Frequency: stats.Frequency,
		PValue:    stats.PValue,
		LogPValue: stats.LogPValue,
	})
}

func (s *Server) decodeSMILES(w http.ResponseWriter, r *http.Request) (*graph.Graph, bool) {
	var req smilesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		decodeError(w, err)
		return nil, false
	}
	if req.SMILES == "" {
		httpError(w, http.StatusBadRequest, "missing smiles")
		return nil, false
	}
	g, err := chem.ParseSMILES(req.SMILES)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	if g.NumNodes() == 0 {
		httpError(w, http.StatusBadRequest, "empty pattern")
		return nil, false
	}
	return g, true
}

// lazyIndex builds the substructure index on first use. On a
// store-backed server it materializes the corpus first (database()
// also takes s.mu, so it runs before the lock here).
func (s *Server) lazyIndex() (*gindex.Index, error) {
	db, err := s.database()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		s.index = gindex.BuildFrequent(db, gindex.FrequentOptions{
			MinSupportPct:   10,
			MaxPatternEdges: 3,
			MaxPatterns:     128,
		})
	}
	return s.index, nil
}

// lazyVectors builds the database RWR vectors on first use.
func (s *Server) lazyVectors() ([]rwr.NodeVector, error) {
	db, err := s.database()
	if err != nil {
		return nil, err
	}
	s.vecOnce.Do(func() {
		fs := core.BuildFeatureSet(db, s.vecCfg)
		s.vectors = rwr.DatabaseVectors(db, fs, rwr.Config{Alpha: s.vecCfg.Alpha, Bins: s.vecCfg.Bins})
	})
	return s.vectors, nil
}

// Warm eagerly builds the lazily-constructed read models — the
// substructure index behind /query and the RWR vectors behind
// /significance — so the first requests after startup don't pay a
// multi-second cold-start stall. Safe (and cheap) to call more than
// once; safe concurrently with serving. On a store-backed server the
// first error aborts the warm-up; /query and /significance retry the
// materialization per request.
func (s *Server) Warm() error {
	if _, err := s.lazyIndex(); err != nil {
		return err
	}
	_, err := s.lazyVectors()
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeError maps a JSON decode failure to 413 when the body cap
// tripped, 400 otherwise.
func decodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return
	}
	httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
}
