// Package server exposes a loaded chemical screen over HTTP: significant-
// subgraph mining, indexed substructure search, and single-pattern
// significance evaluation. Molecules cross the wire as SMILES; everything
// else is JSON. The server is read-only over its database and safe for
// concurrent requests.
//
//	POST /mine          {"maxPvalue":0.1,"minFreqPct":0.1,"radius":4,"topK":0,"timeoutMs":30000}
//	POST /query         {"smiles":"c1ccccc1"}
//	POST /significance  {"smiles":"[Sb](O)(O)O"}
//	GET  /stats
//	GET  /healthz
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/gindex"
	"graphsig/internal/graph"
	"graphsig/internal/runctl"
	"graphsig/internal/rwr"
)

// Operational defaults; override the Server fields before Handler().
const (
	// DefaultMaxConcurrent bounds simultaneously served requests.
	DefaultMaxConcurrent = 64
	// DefaultMaxBodyBytes caps request bodies.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMineTimeout applies when a /mine request names none.
	DefaultMineTimeout = 30 * time.Second
	// DefaultMineTimeoutCap clamps client-requested mine timeouts so a
	// request cannot pin a worker past the server's write timeout.
	DefaultMineTimeoutCap = 2 * time.Minute
)

// Server answers mining and search requests over one immutable database.
type Server struct {
	db    []*graph.Graph
	alpha *graph.Alphabet

	// MaxConcurrent bounds simultaneously served requests; excess
	// requests get an immediate 503 (0 = unbounded).
	MaxConcurrent int
	// MaxBodyBytes caps request body size (0 = unbounded).
	MaxBodyBytes int64
	// MineTimeout is the default /mine deadline when the request names
	// none; MineTimeoutCap clamps what a request may ask for.
	MineTimeout    time.Duration
	MineTimeoutCap time.Duration
	// MineBudgets bounds per-stage mining work for every /mine request
	// (zero fields = unbounded).
	MineBudgets runctl.Budgets
	// Logf receives operational log lines (degraded mines, panics);
	// log.Printf when nil.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	index *gindex.Index // built lazily on the first /query

	vecOnce sync.Once
	vectors []rwr.NodeVector // built lazily on the first /significance
	vecCfg  core.Config
}

// New creates a server over db. Node labels must follow the standard
// chemistry alphabet (datagen output or SMILES input qualify).
func New(db []*graph.Graph) *Server {
	return &Server{
		db:             db,
		alpha:          chem.Alphabet(),
		vecCfg:         core.Defaults(),
		MaxConcurrent:  DefaultMaxConcurrent,
		MaxBodyBytes:   DefaultMaxBodyBytes,
		MineTimeout:    DefaultMineTimeout,
		MineTimeoutCap: DefaultMineTimeoutCap,
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Handler returns the HTTP handler: the endpoint mux behind the
// hardening middleware (panic recovery outermost, then the concurrency
// limit, then the request-body cap).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /mine", s.handleMine)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /significance", s.handleSignificance)
	return recoverPanics(limitConcurrency(s.MaxConcurrent, capRequestBody(s.MaxBodyBytes, mux)))
}

type statsResponse struct {
	Graphs   int     `json:"graphs"`
	AvgAtoms float64 `json:"avgAtoms"`
	AvgBonds float64 `json:"avgBonds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	atoms, bonds := 0, 0
	for _, g := range s.db {
		atoms += g.NumNodes()
		bonds += g.NumEdges()
	}
	resp := statsResponse{Graphs: len(s.db)}
	if len(s.db) > 0 {
		resp.AvgAtoms = float64(atoms) / float64(len(s.db))
		resp.AvgBonds = float64(bonds) / float64(len(s.db))
	}
	writeJSON(w, http.StatusOK, resp)
}

type mineRequest struct {
	MaxPvalue  float64 `json:"maxPvalue"`
	MinFreqPct float64 `json:"minFreqPct"`
	Radius     int     `json:"radius"`
	TopK       int     `json:"topK"`
	TimeoutMs  int     `json:"timeoutMs"`
	Limit      int     `json:"limit"`
}

type minedPattern struct {
	SMILES    string  `json:"smiles"`
	PValue    float64 `json:"pValue"`
	Support   int     `json:"support"`
	Frequency float64 `json:"frequency"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
}

type mineResponse struct {
	Patterns  []minedPattern      `json:"patterns"`
	Truncated bool                `json:"truncated"`
	ElapsedMs int64               `json:"elapsedMs"`
	Degraded  *runctl.Degradation `json:"degradation,omitempty"`
}

// mineDeadline clamps the client-requested timeout into (0, cap].
func (s *Server) mineDeadline(timeoutMs int) time.Time {
	d := s.MineTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if s.MineTimeoutCap > 0 && (d <= 0 || d > s.MineTimeoutCap) {
		d = s.MineTimeoutCap
	}
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	var req mineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		decodeError(w, err)
		return
	}
	cfg := core.Defaults()
	if req.MaxPvalue > 0 {
		cfg.MaxPvalue = req.MaxPvalue
	}
	if req.MinFreqPct > 0 {
		cfg.MinFreqPct = req.MinFreqPct
	}
	if req.Radius > 0 {
		cfg.CutoffRadius = req.Radius
	}
	cfg.TopKPerLabel = req.TopK
	// The run controller ties the mine to the request: a client
	// disconnect cancels it, and the deadline/budgets bound how long a
	// single request can hold workers.
	cfg.Ctl = runctl.New(runctl.Options{
		Context:  r.Context(),
		Deadline: s.mineDeadline(req.TimeoutMs),
		Budgets:  s.MineBudgets,
	})
	t0 := time.Now()
	res := core.Mine(s.db, cfg)
	resp := mineResponse{Truncated: res.Truncated, ElapsedMs: time.Since(t0).Milliseconds()}
	if res.Degradation.Truncated {
		d := res.Degradation
		resp.Degraded = &d
		s.logf("server: mine degraded after %s: %s", time.Since(t0).Round(time.Millisecond), d.String())
	}
	limit := req.Limit
	if limit <= 0 || limit > len(res.Subgraphs) {
		limit = len(res.Subgraphs)
	}
	for _, sg := range res.Subgraphs[:limit] {
		smiles, err := chem.WriteSMILES(sg.Graph)
		if err != nil {
			continue
		}
		resp.Patterns = append(resp.Patterns, minedPattern{
			SMILES:    smiles,
			PValue:    sg.VectorPValue,
			Support:   sg.Support,
			Frequency: sg.Frequency,
			Nodes:     sg.Graph.NumNodes(),
			Edges:     sg.Graph.NumEdges(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type smilesRequest struct {
	SMILES string `json:"smiles"`
}

type queryResponse struct {
	IDs     []int `json:"ids"`
	Support int   `json:"support"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	pattern, ok := s.decodeSMILES(w, r)
	if !ok {
		return
	}
	ids := s.lazyIndex().Query(pattern)
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, http.StatusOK, queryResponse{IDs: ids, Support: len(ids)})
}

type significanceResponse struct {
	Support   int     `json:"support"`
	Frequency float64 `json:"frequency"`
	PValue    float64 `json:"pValue"`
	LogPValue float64 `json:"logPValue"`
}

func (s *Server) handleSignificance(w http.ResponseWriter, r *http.Request) {
	pattern, ok := s.decodeSMILES(w, r)
	if !ok {
		return
	}
	s.vecOnce.Do(func() {
		fs := core.BuildFeatureSet(s.db, s.vecCfg)
		s.vectors = rwr.DatabaseVectors(s.db, fs, rwr.Config{Alpha: s.vecCfg.Alpha, Bins: s.vecCfg.Bins})
	})
	stats := core.EvaluateSubgraph(s.db, s.vectors, pattern, s.vecCfg)
	writeJSON(w, http.StatusOK, significanceResponse{
		Support:   stats.Support,
		Frequency: stats.Frequency,
		PValue:    stats.PValue,
		LogPValue: stats.LogPValue,
	})
}

func (s *Server) decodeSMILES(w http.ResponseWriter, r *http.Request) (*graph.Graph, bool) {
	var req smilesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		decodeError(w, err)
		return nil, false
	}
	if req.SMILES == "" {
		httpError(w, http.StatusBadRequest, "missing smiles")
		return nil, false
	}
	g, err := chem.ParseSMILES(req.SMILES)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	if g.NumNodes() == 0 {
		httpError(w, http.StatusBadRequest, "empty pattern")
		return nil, false
	}
	return g, true
}

// lazyIndex builds the substructure index on first use.
func (s *Server) lazyIndex() *gindex.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		s.index = gindex.BuildFrequent(s.db, gindex.FrequentOptions{
			MinSupportPct:   10,
			MaxPatternEdges: 3,
			MaxPatterns:     128,
		})
	}
	return s.index
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeError maps a JSON decode failure to 413 when the body cap
// tripped, 400 otherwise.
func decodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return
	}
	httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
}
