package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/gindex"
)

func testServer(t *testing.T) (*httptest.Server, *chem.Dataset) {
	t.Helper()
	d := chem.GenerateN(chem.AIDSSpec(), 120)
	srv := httptest.NewServer(New(d.Graphs).Handler())
	t.Cleanup(srv.Close)
	return srv, d
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	var stats statsResponse
	r2, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Graphs != 120 || stats.AvgAtoms < 15 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMineEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var resp mineResponse
	code := postJSON(t, srv.URL+"/mine", mineRequest{Radius: 3, Limit: 5, TimeoutMs: 60000}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	if len(resp.Patterns) > 5 {
		t.Errorf("limit ignored: %d patterns", len(resp.Patterns))
	}
	for _, p := range resp.Patterns {
		if p.SMILES == "" || p.Support <= 0 || p.Edges == 0 {
			t.Errorf("bad pattern %+v", p)
		}
		if _, err := chem.ParseSMILES(p.SMILES); err != nil {
			t.Errorf("unparseable SMILES %q", p.SMILES)
		}
	}
}

func TestQueryEndpointMatchesScan(t *testing.T) {
	srv, d := testServer(t)
	var resp queryResponse
	code := postJSON(t, srv.URL+"/query", smilesRequest{SMILES: "c1ccccc1"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	benzene := chem.Benzene()
	want := gindex.ScanQuery(d.Graphs, benzene)
	if resp.Support != len(want) {
		t.Errorf("support = %d; scan says %d", resp.Support, len(want))
	}
	for i := range want {
		if resp.IDs[i] != want[i] {
			t.Fatalf("ids differ from scan at %d", i)
		}
	}
}

func TestSignificanceEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var benzene significanceResponse
	if code := postJSON(t, srv.URL+"/significance", smilesRequest{SMILES: "c1ccccc1"}, &benzene); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if benzene.Frequency < 0.4 {
		t.Errorf("benzene frequency = %f", benzene.Frequency)
	}
	if benzene.PValue <= 0.1 {
		t.Errorf("benzene p-value = %f; should not be significant", benzene.PValue)
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		path string
		body string
	}{
		{"/mine", "{not json"},
		{"/query", `{"smiles":""}`},
		{"/query", `{"smiles":"C(("}`},
		{"/significance", `{}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %q: status %d; want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/mine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /mine should not succeed")
	}
}

func TestClientRoundTrip(t *testing.T) {
	srv, d := testServer(t)
	c := NewClient(srv.URL)

	graphs, avgAtoms, _, err := c.Stats()
	if err != nil || graphs != 120 || avgAtoms < 15 {
		t.Fatalf("Stats: %d, %f, %v", graphs, avgAtoms, err)
	}

	patterns, truncated, err := c.Mine(MineOptions{Radius: 3, Limit: 4, TimeoutMs: 60000})
	if err != nil || truncated {
		t.Fatalf("Mine: %v truncated=%v", err, truncated)
	}
	if len(patterns) == 0 || len(patterns) > 4 {
		t.Fatalf("got %d patterns", len(patterns))
	}
	for _, p := range patterns {
		if p.Graph == nil || p.Graph.NumEdges() == 0 || p.Support <= 0 {
			t.Errorf("bad pattern %+v", p)
		}
	}

	ids, err := c.Query("c1ccccc1")
	if err != nil {
		t.Fatal(err)
	}
	want := gindex.ScanQuery(d.Graphs, chem.Benzene())
	if len(ids) != len(want) {
		t.Errorf("query ids %d; scan %d", len(ids), len(want))
	}

	sup, freq, p, err := c.Significance("c1ccccc1")
	if err != nil || sup != len(want) || freq < 0.4 || p <= 0.1 {
		t.Errorf("Significance: sup=%d freq=%f p=%f err=%v", sup, freq, p, err)
	}
}

func TestClientServerError(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	if _, err := c.Query("C(("); err == nil {
		t.Error("bad SMILES accepted by client")
	}
	c2 := NewClient("http://127.0.0.1:1") // nothing listening
	if _, _, _, err := c2.Stats(); err == nil {
		t.Error("unreachable server produced no error")
	}
}
