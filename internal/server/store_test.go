package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/store"
)

// TestStoreBackedServerMatchesInMemory is the serving-layer acceptance
// path: a server over a persistent segment store, mining through the
// scatter-gather coordinator with a tiny segment LRU, must answer
// /mine byte-identically to a server holding the same corpus in
// memory — and the auxiliary endpoints (/query, /significance) must
// work through the lazily-materialized corpus.
func TestStoreBackedServerMatchesInMemory(t *testing.T) {
	d := chem.GenerateN(chem.AIDSSpec(), 120)

	mem := httptest.NewServer(New(d.Graphs).Handler())
	t.Cleanup(mem.Close)

	dir := t.TempDir()
	if _, err := store.Build(dir, d.Graphs, store.BuildOptions{SegmentGraphs: 16}); err != nil {
		t.Fatal(err)
	}
	s, err := NewFromStore(dir, StoreOptions{Shards: 3, CachedSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = t.Logf
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	req := mineRequest{Radius: 3, TimeoutMs: 120000}
	var want, got mineResponse
	if code := postJSON(t, mem.URL+"/mine", req, &want); code != http.StatusOK {
		t.Fatalf("in-memory mine: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/mine", req, &got); code != http.StatusOK {
		t.Fatalf("store-backed mine: status %d", code)
	}
	if len(want.Patterns) == 0 {
		t.Fatal("in-memory mine found nothing; the comparison is vacuous")
	}
	if !reflect.DeepEqual(want.Patterns, got.Patterns) {
		t.Errorf("pattern sets differ:\n  in-memory   %+v\n  store-backed %+v", want.Patterns, got.Patterns)
	}
	if want.Truncated || got.Truncated {
		t.Errorf("truncated: in-memory %v, store-backed %v", want.Truncated, got.Truncated)
	}

	// /stats answers from the manifest without materializing segments,
	// and reports the store generation and shard width.
	var stats statsResponse
	r, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Graphs != 120 || stats.Generation != 1 || stats.Shards != 3 {
		t.Errorf("stats = %+v; want 120 graphs, generation 1, 3 shards", stats)
	}
	if stats.AvgAtoms < 15 {
		t.Errorf("avgAtoms = %f; manifest totals look wrong", stats.AvgAtoms)
	}

	// The aux read models materialize the corpus from the store.
	var q queryResponse
	if code := postJSON(t, srv.URL+"/query", smilesRequest{SMILES: "c1ccccc1"}, &q); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if q.Support == 0 {
		t.Error("benzene query found nothing in the materialized corpus")
	}
	var sig significanceResponse
	if code := postJSON(t, srv.URL+"/significance", smilesRequest{SMILES: "c1ccccc1"}, &sig); code != http.StatusOK {
		t.Fatalf("significance: status %d", code)
	}
	if sig.Frequency < 0.4 {
		t.Errorf("benzene frequency = %f", sig.Frequency)
	}
}
