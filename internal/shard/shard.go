// Package shard partitions a graph database across N shards and mines
// it by scatter-gather, producing a pattern set byte-identical to a
// single-process core.Mine at any shard count.
//
// The decomposition is forced by the statistics, not by convenience.
// GraphSig's significance measure judges each region vector against
// empirical priors over the WHOLE vector database (§III) — a p-value
// computed against one shard's background is a different number, so
// naively running core.Mine per shard and unioning the answers is
// wrong at any threshold. What CAN scatter is exactly the per-graph
// work: feature statistics (counts add, edge-type sets union), RWR
// vectorization (each node's vector depends only on its own graph),
// and graph-space support counting (supports over a disjoint partition
// sum). Everything that reads a distribution — the significance
// model's priors, FVMine thresholds, group assembly, pattern dedup by
// minimum DFS code — runs once at the coordinator over pooled inputs.
// Backgrounds pool before scoring; that is the whole design.
//
// The coordinator visits shards one at a time in the scatter passes,
// so peak residency is one shard's graphs plus the pooled vectors —
// with a store.Reader underneath, a corpus larger than RAM mines in
// bounded memory. Per-shard RWR vectors are cached under the shard's
// content fingerprint: after an incremental append under the Hash
// strategy, unchanged shards hit their cache and only the shards that
// actually gained graphs re-vectorize.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
	"graphsig/internal/rwr"
)

// Strategy selects how database positions map to shards.
type Strategy int

const (
	// Contiguous assigns position ranges: shard s holds an equal-share
	// contiguous run of graph positions. Best locality over a segment
	// store, but an append shifts every boundary, so all shard caches
	// invalidate.
	Contiguous Strategy = iota
	// Hash assigns position i to shard i mod N. An append only ever
	// adds members to shards, never moves existing ones, so shards
	// keep their cached vectors across appends except where new graphs
	// actually landed.
	Hash
)

func (s Strategy) String() string {
	switch s {
	case Contiguous:
		return "contiguous"
	case Hash:
		return "hash"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Source is a graph database the coordinator can read positionally —
// an in-memory Slice or a lazy store.Reader.
type Source interface {
	Len() int
	Graph(i int) (*graph.Graph, error)
}

// Slice adapts an in-memory database to Source.
type Slice []*graph.Graph

// Len returns the database size.
func (s Slice) Len() int { return len(s) }

// Graph returns position i.
func (s Slice) Graph(i int) (*graph.Graph, error) { return s[i], nil }

// Options configures a Coordinator.
type Options struct {
	// Shards is the partition count (minimum 1; 1 degenerates to an
	// out-of-core single-shard mine).
	Shards int
	// Strategy maps positions to shards (default Contiguous).
	Strategy Strategy
	// Fingerprint is the whole-database content fingerprint
	// (graph.Fingerprint). When empty, New computes it with one
	// streaming pass over the source; a store.Reader's manifest already
	// carries it, so store-backed callers pass it and skip the scan.
	Fingerprint string
	// Metrics, when non-nil, receives per-shard gauges and the vector
	// cache counters.
	Metrics *obs.Registry
}

// Coordinator owns the shard plan and the per-shard vector cache. One
// coordinator serves many Mine calls (and many configs — the cache key
// includes the vectorization parameters). Safe for concurrent use.
type Coordinator struct {
	metrics *obs.Registry
	mines   *obs.Counter

	mu       sync.Mutex
	src      Source
	fp       string
	shards   int
	strategy Strategy
	plan     [][]int
	vecCache map[vecCacheKey][]rwr.NodeVector
}

// vecCacheKey scopes cached per-shard vectors to the exact shard
// content and the exact vectorization inputs. The shard fingerprint
// covers membership, order, and every graph's bytes; the config key
// covers the feature set, alpha, bins, vectorizer and radius (it is
// the full mining CacheKey — coarser reuse across configs that differ
// only post-RWR is deliberately left on the table for safety).
type vecCacheKey struct {
	shardFP string
	cfgKey  string
}

// New plans a partition of src into opt.Shards shards.
func New(src Source, opt Options) (*Coordinator, error) {
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	fp := opt.Fingerprint
	if fp == "" {
		f := graph.NewFingerprinter()
		for i := 0; i < src.Len(); i++ {
			g, err := src.Graph(i)
			if err != nil {
				return nil, fmt.Errorf("shard: fingerprint scan: %w", err)
			}
			f.Add(g)
		}
		fp = f.Sum()
	}
	c := &Coordinator{
		metrics:  opt.Metrics,
		mines:    opt.Metrics.Counter(obs.MShardMines),
		src:      src,
		fp:       fp,
		shards:   opt.Shards,
		strategy: opt.Strategy,
		vecCache: map[vecCacheKey][]rwr.NodeVector{},
	}
	c.replan()
	return c, nil
}

// replan recomputes the member lists. Caller holds mu (or is New).
func (c *Coordinator) replan() {
	n := c.src.Len()
	plan := make([][]int, c.shards)
	switch c.strategy {
	case Hash:
		for i := 0; i < n; i++ {
			s := i % c.shards
			plan[s] = append(plan[s], i)
		}
	default:
		per, extra := n/c.shards, n%c.shards
		pos := 0
		for s := 0; s < c.shards; s++ {
			count := per
			if s < extra {
				count++
			}
			for i := 0; i < count; i++ {
				plan[s] = append(plan[s], pos)
				pos++
			}
		}
	}
	c.plan = plan
	for s, members := range plan {
		c.metrics.Gauge(obs.MShardGraphs, "shard", strconv.Itoa(s)).Set(int64(len(members)))
	}
}

// Reload swaps the database under the coordinator after an incremental
// append: new source, new whole-database fingerprint, new plan. The
// vector cache is kept — under the Hash strategy a shard that gained
// no graphs has an unchanged content fingerprint and hits it.
func (c *Coordinator) Reload(src Source, fingerprint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.src = src
	c.fp = fingerprint
	c.replan()
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.shards }

// Fingerprint returns the whole-database fingerprint being served.
func (c *Coordinator) Fingerprint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fp
}

// Members returns shard s's database positions (read-only).
func (c *Coordinator) Members(s int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plan[s]
}

// snapshot pins the plan a Mine runs against, so a concurrent Reload
// cannot shear one run's passes across two generations.
func (c *Coordinator) snapshot() (Source, string, [][]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.src, c.fp, c.plan
}

// loadShard materializes one shard's graphs in member order and their
// content fingerprint.
func loadShard(src Source, members []int) ([]*graph.Graph, string, error) {
	graphs := make([]*graph.Graph, len(members))
	f := graph.NewFingerprinter()
	for k, pos := range members {
		g, err := src.Graph(pos)
		if err != nil {
			return nil, "", fmt.Errorf("shard: load graph %d: %w", pos, err)
		}
		graphs[k] = g
		f.Add(g)
	}
	return graphs, f.Sum(), nil
}

// Mine runs the scatter-gather pipeline and returns a Result
// byte-identical to core.Mine over the same database and config —
// including p-values, verified supports, and ordering — at any shard
// count and either strategy. An error means a source read failed in a
// scatter pass; truncation (deadline, budget, cancel) is reported in
// Result.Degradation exactly as core.Mine reports it.
func (c *Coordinator) Mine(cfg core.Config) (core.Result, error) {
	cfg = core.Normalized(cfg)
	ctl := core.ControllerFor(cfg)
	cfg.Ctl = ctl // every stage below must observe this one controller
	src, dbFP, plan := c.snapshot()
	cfg.DBFingerprint = dbFP
	c.mines.Inc()

	var res core.Result
	n := src.Len()
	if n == 0 {
		return res, nil
	}

	// Phase 1 scatter: per-shard feature statistics, merged before the
	// feature set is built — the first of the pooled decisions.
	t0 := time.Now()
	featSpan := ctl.StartStage(runctl.StageFeatures)
	fs := cfg.FeatureSet
	shardFPs := make([]string, len(plan))
	if fs == nil {
		merged := feature.NewStats()
		for s, members := range plan {
			if ctl.Stopped() {
				break
			}
			graphs, sfp, err := loadShard(src, members)
			if err != nil {
				featSpan.Fail(runctl.ReasonPanic, 0)
				return res, err
			}
			shardFPs[s] = sfp
			st := feature.NewStats()
			for _, g := range graphs {
				st.Add(g)
			}
			merged.Merge(st)
		}
		fs = feature.ChemistrySetFromStats(merged, cfg.Alphabet, cfg.TopAtoms)
	}
	featSpan.End(int64(fs.Len()))

	// Phase 1 scatter, second pass: RWR per shard, results remapped to
	// database positions and pooled. Each node's vector depends only on
	// its own graph, so per-shard vectorization plus a positional sort
	// reproduces the database-order vector slice exactly.
	vectors := make([]rwr.NodeVector, 0, n)
	for s, members := range plan {
		if ctl.Stopped() {
			break
		}
		vecs, err := c.shardVectors(src, members, shardFPs[s], s, fs, cfg)
		if err != nil {
			return res, err
		}
		vectors = append(vectors, vecs...)
	}
	sort.Slice(vectors, func(i, j int) bool {
		if vectors[i].GraphID != vectors[j].GraphID {
			return vectors[i].GraphID < vectors[j].GraphID
		}
		return vectors[i].NodeID < vectors[j].NodeID
	})
	res.Profile.RWR = time.Since(t0)

	// Phase 2 gather: significance over the POOLED vectors. The model's
	// empirical priors now span the whole database, which is what makes
	// per-shard p-values come out right (they are never computed).
	t1 := time.Now()
	groups := core.SignificantGroups(vectors, cfg)
	res.VectorsMined = len(groups)
	res.Profile.FeatureAnalysis = time.Since(t1)

	// Phase 3 at the coordinator: group FSM and dedup are global
	// decisions (a pattern's supporting regions span shards). Windows
	// are cut through the source on demand, so the store's segment LRU
	// bounds residency; a read error surfaces as that group's isolated
	// error, consistent with the per-group panic barrier.
	t2 := time.Now()
	fetch := func(i int) *graph.Graph {
		g, err := src.Graph(i)
		if err != nil {
			panic(fmt.Sprintf("shard: window fetch: %v", err))
		}
		return g
	}
	patterns, stats := core.MinePatterns(fetch, groups, cfg)
	res.GroupsMined = stats.GroupsMined
	res.GroupsPruned = stats.GroupsPruned
	res.GroupErrors = stats.GroupErrors
	res.Profile.FSM = time.Since(t2)

	// Final scatter: per-shard support verification. Disjoint shards
	// partition the database, so per-shard counts sum to the exact
	// whole-database support.
	t3 := time.Now()
	if !cfg.SkipVerify && len(patterns) > 0 {
		if err := c.verify(src, plan, patterns, cfg, ctl); err != nil {
			return res, err
		}
	}
	for _, sg := range patterns {
		res.Subgraphs = append(res.Subgraphs, *sg)
	}
	core.SortSubgraphs(res.Subgraphs)
	res.Profile.Verify = time.Since(t3)
	res.Degradation = ctl.Report()
	res.Truncated = res.Degradation.Truncated
	return res, nil
}

// shardVectors returns shard s's RWR vectors with GraphIDs remapped to
// database positions, from cache when the shard's content and the
// vectorization config match a previous run. shardFP may be empty (the
// stats pass was skipped because cfg supplied a feature set); the
// shard is then loaded and fingerprinted here.
func (c *Coordinator) shardVectors(src Source, members []int, shardFP string, s int, fs *feature.Set, cfg core.Config) ([]rwr.NodeVector, error) {
	var graphs []*graph.Graph
	if shardFP == "" {
		var err error
		graphs, shardFP, err = loadShard(src, members)
		if err != nil {
			return nil, err
		}
	}
	key := vecCacheKey{shardFP: shardFP, cfgKey: cfg.CacheKey()}
	label := strconv.Itoa(s)
	c.mu.Lock()
	cached, ok := c.vecCache[key]
	c.mu.Unlock()
	if ok {
		c.metrics.Counter(obs.MShardVectorCacheHits, "shard", label).Inc()
		return cached, nil
	}
	c.metrics.Counter(obs.MShardVectorCacheMisses, "shard", label).Inc()
	if graphs == nil {
		var err error
		graphs, _, err = loadShard(src, members)
		if err != nil {
			return nil, err
		}
	}
	vecs := core.ComputeVectors(graphs, fs, cfg)
	for i := range vecs {
		vecs[i].GraphID = members[vecs[i].GraphID]
	}
	// A truncated vectorization (deadline, cancel) is partial; caching
	// it would poison later complete runs.
	if cfg.Ctl != nil && cfg.Ctl.Stopped() {
		return vecs, nil
	}
	c.mu.Lock()
	c.vecCache[key] = vecs
	c.mu.Unlock()
	return vecs, nil
}

// verify counts each pattern's support shard by shard and sums. Shards
// are visited sequentially (one shard's graphs resident at a time);
// within a shard, patterns fan out over cfg.Parallelism workers that
// share the controller's VF2 budget. The all-or-nothing rule matches
// core.Mine: if the run was cut short, every pattern reverts to
// Unverified, because *which* counts completed depends on scheduling.
func (c *Coordinator) verify(src Source, plan [][]int, patterns []*core.Subgraph, cfg core.Config, ctl *runctl.Controller) error {
	span := ctl.StartStage(runctl.StageVerify)
	supports := make([]atomic.Int64, len(patterns))
	incomplete := make([]atomic.Bool, len(patterns))
	workers := cfg.Parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(patterns) {
		workers = len(patterns)
	}
	for _, members := range plan {
		if ctl.Stopped() {
			break
		}
		graphs, _, err := loadShard(src, members)
		if err != nil {
			span.Fail(runctl.ReasonPanic, 0)
			return err
		}
		verifyShard(graphs, patterns, supports, incomplete, workers, ctl)
	}
	if ctl.Stopped() {
		// Counts are partial in an order-dependent way; void uniformly.
		span.End(0)
		ctl.RecordStop(runctl.StageVerify, 0, int64(len(patterns)), "patterns support-verified")
		return nil
	}
	verified := 0
	for i, sg := range patterns {
		if incomplete[i].Load() {
			continue // stays Unverified
		}
		sup := int(supports[i].Load())
		sg.Support = sup
		sg.Frequency = float64(sup) / float64(src.Len())
		sg.Unverified = false
		verified++
	}
	span.End(int64(verified))
	if verified < len(patterns) {
		ctl.RecordStop(runctl.StageVerify, int64(verified), int64(len(patterns)), "patterns support-verified")
	}
	return nil
}

// verifyShard counts every pattern's support within one resident
// shard: a fixed pool of workers claims pattern indexes off a shared
// atomic counter, adding each within-shard count into the cross-shard
// accumulators.
func verifyShard(graphs []*graph.Graph, patterns []*core.Subgraph, supports []atomic.Int64, incomplete []atomic.Bool, workers int, ctl *runctl.Controller) {
	pf := isomorph.NewPrefilter(graphs).Meter(ctl.Metrics(), "verify")
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cp := ctl.Checkpoint(runctl.StageVerify)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(patterns) {
					return
				}
				if ctl.Stopped() {
					incomplete[i].Store(true)
					continue
				}
				if err := countOne(pf, patterns[i], &supports[i], cp, ctl); err != nil {
					incomplete[i].Store(true)
				}
			}
		}()
	}
	wg.Wait()
}

// countOne adds one pattern's within-shard support behind a panic
// barrier, so a pathological VF2 case degrades one pattern instead of
// deadlocking the pool.
func countOne(pf *isomorph.Prefilter, sg *core.Subgraph, total *atomic.Int64, cp *runctl.Checkpoint, ctl *runctl.Controller) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ctl.Recovered(runctl.StageVerify, "shard support verification", r)
			err = fmt.Errorf("shard: verify panic: %v", r)
		}
	}()
	sup, err := pf.SupportCtl(sg.Graph, cp)
	if err != nil {
		return err
	}
	total.Add(int64(sup))
	return nil
}
