package shard

import (
	"fmt"
	"strconv"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/obs"
	"graphsig/internal/store"
)

// plantedDB mirrors the core test workload: total random molecules,
// the first `planted` of them carrying a grafted significant core —
// the Fig-10-style setup TestMineRecoversPlantedCore mines.
func plantedDB(total, planted int, sig *graph.Graph) []*graph.Graph {
	gen := chem.NewGenerator(99)
	db := make([]*graph.Graph, total)
	for i := range db {
		m := gen.Molecule()
		if i < planted {
			base := m.NumNodes()
			for v := 0; v < sig.NumNodes(); v++ {
				m.AddNode(sig.NodeLabel(v))
			}
			for _, e := range sig.Edges() {
				m.MustAddEdge(base+e.From, base+e.To, e.Label)
			}
			m.MustAddEdge(0, base, chem.BondSingle)
		}
		m.ID = i
		db[i] = m
	}
	return db
}

func testConfig() core.Config {
	cfg := core.Defaults()
	cfg.CutoffRadius = 3
	cfg.MaxPvalue = 0.1
	cfg.MinSupportFloor = 3
	cfg.MaxGroupSize = 40
	return cfg
}

// resultLines flattens every observable field of an answer set —
// including p-values and verified supports — for exact comparison.
func resultLines(res core.Result) []string {
	out := make([]string, 0, len(res.Subgraphs))
	for _, sg := range res.Subgraphs {
		out = append(out, fmt.Sprintf("%s|%d|%v|%v|%d|%d|%d|%d|%v|%v",
			sg.Canonical, sg.SourceLabel, sg.VectorPValue, sg.VectorLogPValue,
			sg.VectorSupport, sg.GroupSize, sg.GroupSupport, sg.Support,
			sg.Frequency, sg.Unverified))
	}
	return out
}

func assertSameResult(t *testing.T, label string, want, got core.Result) {
	t.Helper()
	if want.VectorsMined != got.VectorsMined || want.GroupsMined != got.GroupsMined ||
		want.GroupsPruned != got.GroupsPruned || want.GroupErrors != got.GroupErrors {
		t.Errorf("%s: counters differ: %d/%d/%d/%d vs %d/%d/%d/%d", label,
			want.VectorsMined, want.GroupsMined, want.GroupsPruned, want.GroupErrors,
			got.VectorsMined, got.GroupsMined, got.GroupsPruned, got.GroupErrors)
	}
	la, lb := resultLines(want), resultLines(got)
	if len(la) != len(lb) {
		t.Fatalf("%s: %d vs %d subgraphs", label, len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Errorf("%s: subgraph %d differs:\n  want %s\n  got  %s", label, i, la[i], lb[i])
		}
	}
}

// TestShardInvariance is the acceptance gate of the scatter-gather
// design: the pattern set — every field, p-values and verified
// supports included — must be byte-identical to an unsharded core.Mine
// for shard counts 1, 2 and 4 under both partition strategies.
func TestShardInvariance(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	cfg := testConfig()
	ref := core.Mine(db, cfg)
	if len(ref.Subgraphs) == 0 {
		t.Fatal("reference mine found nothing; the comparison is vacuous")
	}
	if ref.Truncated {
		t.Fatalf("reference mine truncated: %s", ref.Degradation.String())
	}
	for _, strategy := range []Strategy{Contiguous, Hash} {
		for _, shards := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s-%d", strategy, shards)
			t.Run(label, func(t *testing.T) {
				c, err := New(Slice(db), Options{Shards: shards, Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Mine(testConfig())
				if err != nil {
					t.Fatal(err)
				}
				if res.Truncated {
					t.Fatalf("sharded mine truncated: %s", res.Degradation.String())
				}
				assertSameResult(t, label, ref, res)
			})
		}
	}
}

// TestShardVectorCacheRepeatMine: a second identical mine on the same
// coordinator hits every shard's vector cache.
func TestShardVectorCacheRepeatMine(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	reg := obs.NewRegistry()
	c, err := New(Slice(db), Options{Shards: 4, Strategy: Hash, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Mine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Mine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "repeat mine", first, second)
	for s := 0; s < 4; s++ {
		label := strconv.Itoa(s)
		if got := reg.Counter(obs.MShardVectorCacheHits, "shard", label).Value(); got != 1 {
			t.Errorf("shard %d: %d cache hits, want 1", s, got)
		}
		if got := reg.Counter(obs.MShardVectorCacheMisses, "shard", label).Value(); got != 1 {
			t.Errorf("shard %d: %d cache misses, want 1", s, got)
		}
	}
}

// TestAppendInvalidatesOnlyAffectedShards: after an incremental append
// under the Hash strategy, shards that gained no graphs serve their
// cached vectors; only the shards the new graphs landed in recompute.
func TestAppendInvalidatesOnlyAffectedShards(t *testing.T) {
	db := plantedDB(42, 8, chem.SbCore())
	reg := obs.NewRegistry()
	c, err := New(Slice(db[:40]), Options{Shards: 4, Strategy: Hash, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mine(testConfig()); err != nil {
		t.Fatal(err)
	}
	// Positions 40 and 41 hash to shards 0 and 1; shards 2 and 3 keep
	// their exact member lists.
	c.Reload(Slice(db), graph.Fingerprint(db))
	res, err := c.Mine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Affected shards missed twice (initial + post-append), unchanged
	// shards missed once and hit once.
	for s, wantMisses := range []int64{2, 2, 1, 1} {
		label := strconv.Itoa(s)
		if got := reg.Counter(obs.MShardVectorCacheMisses, "shard", label).Value(); got != wantMisses {
			t.Errorf("shard %d: %d cache misses, want %d", s, got, wantMisses)
		}
	}
	// And the post-append result is still exactly the whole-database
	// answer, cached vectors and all.
	ref := core.Mine(db, testConfig())
	assertSameResult(t, "post-append", ref, res)
}

// TestStoreBackedMineMatchesInMemory is the out-of-core acceptance
// path: a corpus served lazily from disk segments — with a reader LRU
// far smaller than the segment count, so mining continuously evicts
// and reloads — must mine to the byte-identical result of an
// in-memory run.
func TestStoreBackedMineMatchesInMemory(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	ref := core.Mine(db, testConfig())
	if len(ref.Subgraphs) == 0 {
		t.Fatal("reference mine found nothing")
	}
	dir := t.TempDir()
	man, err := store.Build(dir, db, store.BuildOptions{SegmentGraphs: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r, err := store.Open(dir, store.Options{CachedSegments: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(r, Options{Shards: 2, Strategy: Contiguous, Fingerprint: man.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Mine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "store-backed", ref, res)
	loads := reg.Counter(obs.MStoreSegmentLoads).Value()
	if loads <= int64(len(man.Segments)) {
		t.Errorf("reader loaded %d segments total; with a 2-segment LRU over %d segments the mine should have evicted and reloaded", loads, len(man.Segments))
	}
}
