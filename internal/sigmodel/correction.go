package sigmodel

import (
	"math"
	"sort"
)

// Multiple-testing corrections. FVMine evaluates a large family of
// candidate vectors; a production deployment may want family-wise or
// false-discovery-rate control on top of the paper's raw threshold.

// BonferroniThreshold returns the per-test log p-value threshold that
// controls the family-wise error rate at alpha over m tests:
// log(alpha / m).
func BonferroniThreshold(alpha float64, m int) float64 {
	if m < 1 {
		m = 1
	}
	return math.Log(alpha) - math.Log(float64(m))
}

// BenjaminiHochberg applies the FDR procedure at level alpha to a slice
// of log p-values and returns a keep-mask: keep[i] is true when test i
// survives. The input is not modified.
func BenjaminiHochberg(logPValues []float64, alpha float64) []bool {
	n := len(logPValues)
	keep := make([]bool, n)
	if n == 0 {
		return keep
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return logPValues[order[a]] < logPValues[order[b]]
	})
	// Find the largest k with p_(k) <= (k/n)·alpha, in log space.
	cut := -1
	logAlpha := math.Log(alpha)
	for k := n - 1; k >= 0; k-- {
		bound := logAlpha + math.Log(float64(k+1)) - math.Log(float64(n))
		if logPValues[order[k]] <= bound {
			cut = k
			break
		}
	}
	for k := 0; k <= cut; k++ {
		keep[order[k]] = true
	}
	return keep
}
