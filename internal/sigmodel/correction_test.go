package sigmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBonferroniThreshold(t *testing.T) {
	// alpha=0.05 over 100 tests: per-test threshold 5e-4.
	got := BonferroniThreshold(0.05, 100)
	if math.Abs(got-math.Log(5e-4)) > 1e-12 {
		t.Errorf("threshold = %f; want log(5e-4)", got)
	}
	if BonferroniThreshold(0.05, 0) != math.Log(0.05) {
		t.Error("m<1 should behave as m=1")
	}
}

func TestBenjaminiHochbergKnown(t *testing.T) {
	// Classic example: p = {0.01, 0.02, 0.03, 0.50}, alpha = 0.05.
	// Bounds: 0.0125, 0.025, 0.0375, 0.05. Largest k with p_(k) <= bound
	// is k=3 (0.03 <= 0.0375), so the first three survive.
	ps := []float64{0.01, 0.5, 0.03, 0.02}
	logs := make([]float64, len(ps))
	for i, p := range ps {
		logs[i] = math.Log(p)
	}
	keep := BenjaminiHochberg(logs, 0.05)
	want := []bool{true, false, true, true}
	for i := range want {
		if keep[i] != want[i] {
			t.Errorf("keep[%d] = %v; want %v", i, keep[i], want[i])
		}
	}
}

func TestBenjaminiHochbergAllLarge(t *testing.T) {
	logs := []float64{math.Log(0.9), math.Log(0.8)}
	for i, k := range BenjaminiHochberg(logs, 0.05) {
		if k {
			t.Errorf("keep[%d] = true for non-significant p", i)
		}
	}
}

func TestBenjaminiHochbergEmpty(t *testing.T) {
	if got := BenjaminiHochberg(nil, 0.05); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

// Property: BH keeps a downward-closed set in p-value order, and is at
// least as permissive as Bonferroni.
func TestPropertyBHDownwardClosedAndDominatesBonferroni(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(30)
		logs := make([]float64, n)
		for i := range logs {
			logs[i] = math.Log(rr.Float64())
		}
		alpha := 0.01 + 0.2*rr.Float64()
		keep := BenjaminiHochberg(logs, alpha)
		// Downward closed: if a p-value is kept, every smaller one is too.
		for i := range logs {
			if !keep[i] {
				continue
			}
			for j := range logs {
				if logs[j] <= logs[i] && !keep[j] {
					return false
				}
			}
		}
		// Dominates Bonferroni.
		bon := BonferroniThreshold(alpha, n)
		for i := range logs {
			if logs[i] <= bon && !keep[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}
