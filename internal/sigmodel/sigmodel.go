// Package sigmodel implements the statistical significance model of §III:
// empirical per-feature prior probabilities, the probability of a
// sub-feature vector occurring in a random vector (Eqn 3-4, assuming
// feature independence), and the binomial-tail p-value of a vector given
// its observed support (Eqn 5-6). All p-values are also exposed in log
// space so that extremely significant patterns (p far below float64's
// smallest positive value) remain comparable.
package sigmodel

import (
	"math"

	"graphsig/internal/feature"
	"graphsig/internal/mathx"
)

// Model holds the empirical priors of a feature-vector database.
type Model struct {
	// tail[i][v] = P(y_i >= v) estimated over the database, for
	// v in [0, maxBin+1]. tail[i][0] == 1 by construction.
	tail [][]float64
	// trials is the database size m: the number of random-vector trials
	// in the binomial support model.
	trials int
}

// New builds the empirical prior model from a vector database, exactly as
// in the paper's Table I example: P(y_i >= v) is the fraction of database
// vectors whose i-th feature is at least v.
func New(vectors []feature.Vector) *Model {
	if len(vectors) == 0 {
		return &Model{trials: 0}
	}
	dim := len(vectors[0])
	maxBin := 0
	for _, v := range vectors {
		for _, x := range v {
			if int(x) > maxBin {
				maxBin = int(x)
			}
		}
	}
	counts := make([][]int, dim)
	for i := range counts {
		counts[i] = make([]int, maxBin+2)
	}
	for _, v := range vectors {
		if len(v) != dim {
			panic("sigmodel: inconsistent vector dimensions")
		}
		for i, x := range v {
			counts[i][x]++
		}
	}
	m := &Model{trials: len(vectors), tail: make([][]float64, dim)}
	for i := range counts {
		tail := make([]float64, maxBin+2)
		cum := 0
		for v := maxBin + 1; v >= 0; v-- {
			if v <= maxBin {
				cum += counts[i][v]
			}
			tail[v] = float64(cum) / float64(len(vectors))
		}
		m.tail[i] = tail
	}
	return m
}

// Trials returns the number of random-vector trials m (the database size
// the model was built from).
func (m *Model) Trials() int { return m.trials }

// Dim returns the feature dimensionality.
func (m *Model) Dim() int { return len(m.tail) }

// FeaturePrior returns P(y_i >= v) for feature i.
func (m *Model) FeaturePrior(i int, v int) float64 {
	if v <= 0 {
		return 1
	}
	t := m.tail[i]
	if v >= len(t) {
		return 0
	}
	return t[v]
}

// Prob returns P(x): the probability that x is a sub-vector of a random
// feature vector, as the product of per-feature priors (Eqn 4).
func (m *Model) Prob(x feature.Vector) float64 {
	return math.Exp(m.LogProb(x))
}

// LogProb returns log P(x). It is -Inf when some feature of x exceeds
// every observed value.
func (m *Model) LogProb(x feature.Vector) float64 {
	if len(x) != len(m.tail) {
		panic("sigmodel: vector dimension mismatch")
	}
	sum := 0.0
	for i, v := range x {
		p := m.FeaturePrior(i, int(v))
		if p == 0 {
			return math.Inf(-1)
		}
		sum += math.Log(p)
	}
	return sum
}

// PValue returns the p-value of x at observed support: the probability
// that x occurs in a random database of m vectors with support >= the
// observed support (Eqn 6). Clamped to [0, 1].
func (m *Model) PValue(x feature.Vector, support int) float64 {
	return math.Exp(m.LogPValue(x, support))
}

// LogPValue returns log PValue(x, support), stable in deep underflow.
func (m *Model) LogPValue(x feature.Vector, support int) float64 {
	if support <= 0 {
		return 0
	}
	p := m.Prob(x)
	if p <= 0 {
		// x is impossible under the priors, but was observed: maximal
		// significance.
		return math.Inf(-1)
	}
	return mathx.LogBinomialTail(m.trials, support, p)
}

// PValueNormal approximates the p-value with a continuity-corrected
// normal distribution, as the paper notes is valid "when both m·P(x) and
// m·(1-P(x)) are large". It exists for callers that trade accuracy for a
// constant-time evaluation; NormalApproxOK reports whether the
// approximation is trustworthy for x.
func (m *Model) PValueNormal(x feature.Vector, support int) float64 {
	if support <= 0 {
		return 1
	}
	p := m.Prob(x)
	if p <= 0 {
		return 0
	}
	return mathx.BinomialTailNormal(m.trials, support, p)
}

// NormalApproxOK reports whether the normal approximation is reasonable
// for x under the usual rule of thumb m·P(x) >= 10 and m·(1-P(x)) >= 10.
func (m *Model) NormalApproxOK(x feature.Vector) bool {
	p := m.Prob(x)
	mp := float64(m.trials) * p
	return mp >= 10 && float64(m.trials)-mp >= 10
}
