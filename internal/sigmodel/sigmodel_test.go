package sigmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphsig/internal/feature"
)

// tableI is the sample feature vector database of Table I in the paper.
func tableI() []feature.Vector {
	return []feature.Vector{
		{1, 0, 0, 2}, // v1
		{1, 1, 0, 2}, // v2
		{2, 0, 1, 2}, // v3
		{1, 0, 1, 0}, // v4
	}
}

func TestPriorsMatchPaperTableI(t *testing.T) {
	m := New(tableI())
	// Paper: P(a-b >= 2) = 1/4, P(b-b >= 1) = 2/4.
	if got := m.FeaturePrior(0, 2); got != 0.25 {
		t.Errorf("P(a-b >= 2) = %f; want 0.25", got)
	}
	if got := m.FeaturePrior(2, 1); got != 0.5 {
		t.Errorf("P(b-b >= 1) = %f; want 0.5", got)
	}
	// Any feature at threshold 0 has prior 1.
	for i := 0; i < m.Dim(); i++ {
		if m.FeaturePrior(i, 0) != 1 {
			t.Errorf("P(y_%d >= 0) != 1", i)
		}
	}
	// Beyond observed maxima the prior is 0.
	if m.FeaturePrior(0, 3) != 0 {
		t.Errorf("P(a-b >= 3) = %f; want 0", m.FeaturePrior(0, 3))
	}
}

func TestProbMatchesPaperExample(t *testing.T) {
	// Paper §III-A: P(v2) = P(y1>=1)·P(y2>=1)·P(y3>=0)·P(y4>=2)
	//             = 1 · 1/4 · 1 · 3/4 = 3/16.
	m := New(tableI())
	got := m.Prob(feature.Vector{1, 1, 0, 2})
	if math.Abs(got-3.0/16.0) > 1e-12 {
		t.Errorf("P(v2) = %f; want 3/16", got)
	}
}

func TestPValueBounds(t *testing.T) {
	m := New(tableI())
	x := feature.Vector{1, 0, 0, 0}
	if got := m.PValue(x, 0); got != 1 {
		t.Errorf("PValue at support 0 = %f; want 1", got)
	}
	p := m.PValue(x, 4)
	if p < 0 || p > 1 {
		t.Errorf("PValue out of range: %f", p)
	}
}

func TestPValueImpossibleVector(t *testing.T) {
	m := New(tableI())
	// Feature 0 never reaches 5 in the database.
	x := feature.Vector{5, 0, 0, 0}
	if got := m.PValue(x, 1); got != 0 {
		t.Errorf("PValue of impossible vector = %f; want 0", got)
	}
	if !math.IsInf(m.LogPValue(x, 1), -1) {
		t.Error("LogPValue of impossible vector not -Inf")
	}
}

func randVectors(r *rand.Rand, count, dim, maxBin int) []feature.Vector {
	vs := make([]feature.Vector, count)
	for i := range vs {
		v := make(feature.Vector, dim)
		for j := range v {
			v[j] = uint8(r.Intn(maxBin + 1))
		}
		vs[i] = v
	}
	return vs
}

// Paper monotonicity property 1: x ⊆ y implies
// p-value(x, mu) >= p-value(y, mu).
func TestPropertyMonotoneInVector(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		db := randVectors(rr, 5+rr.Intn(30), 1+rr.Intn(5), 4)
		m := New(db)
		y := db[rr.Intn(len(db))]
		// Build a random sub-vector x of y.
		x := y.Clone()
		for i := range x {
			if x[i] > 0 {
				x[i] -= uint8(rr.Intn(int(x[i]) + 1))
			}
		}
		mu := 1 + rr.Intn(len(db))
		return m.LogPValue(x, mu) >= m.LogPValue(y, mu)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

// Paper monotonicity property 2: mu1 >= mu2 implies
// p-value(x, mu1) <= p-value(x, mu2).
func TestPropertyMonotoneInSupport(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		db := randVectors(rr, 5+rr.Intn(30), 1+rr.Intn(5), 4)
		m := New(db)
		x := db[rr.Intn(len(db))]
		mu1 := 1 + rr.Intn(len(db))
		mu2 := 1 + rr.Intn(len(db))
		if mu1 < mu2 {
			mu1, mu2 = mu2, mu1
		}
		return m.LogPValue(x, mu1) <= m.LogPValue(x, mu2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestZeroVectorPValueIsHigh(t *testing.T) {
	db := randVectors(rand.New(rand.NewSource(73)), 50, 4, 3)
	m := New(db)
	zero := make(feature.Vector, 4)
	// The zero vector occurs in every random vector (P=1), so observing
	// it in all m vectors is exactly expected: p-value 1.
	if got := m.PValue(zero, len(db)); got != 1 {
		t.Errorf("PValue(zero, m) = %f; want 1", got)
	}
}

func TestEmptyModel(t *testing.T) {
	m := New(nil)
	if m.Trials() != 0 || m.Dim() != 0 {
		t.Errorf("empty model: trials=%d dim=%d", m.Trials(), m.Dim())
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	m := New(tableI())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.LogProb(feature.Vector{1, 2})
}

func TestRareVectorMoreSignificant(t *testing.T) {
	// Database where feature 0 is almost always 0 and feature 1 is
	// almost always high. A vector demanding the rare feature must be
	// more significant at equal support.
	var db []feature.Vector
	for i := 0; i < 100; i++ {
		v := feature.Vector{0, 3}
		if i < 2 {
			v = feature.Vector{3, 3}
		}
		db = append(db, v)
	}
	m := New(db)
	rare := feature.Vector{3, 0}
	common := feature.Vector{0, 3}
	if !(m.LogPValue(rare, 2) < m.LogPValue(common, 2)) {
		t.Errorf("rare %v not more significant than common %v",
			m.LogPValue(rare, 2), m.LogPValue(common, 2))
	}
}

func TestPValueNormalApproximation(t *testing.T) {
	// A large database where the approximation conditions hold.
	r := rand.New(rand.NewSource(8))
	db := randVectors(r, 2000, 3, 3)
	m := New(db)
	x := feature.Vector{1, 1, 0}
	if !m.NormalApproxOK(x) {
		t.Skip("approximation conditions not met for this vector")
	}
	exact := m.PValue(x, 300)
	approx := m.PValueNormal(x, 300)
	if math.Abs(exact-approx) > 0.02 {
		t.Errorf("normal approx off: exact %f approx %f", exact, approx)
	}
}

func TestPValueNormalEdges(t *testing.T) {
	m := New(tableI())
	if got := m.PValueNormal(feature.Vector{1, 0, 0, 0}, 0); got != 1 {
		t.Errorf("support 0: %f", got)
	}
	if got := m.PValueNormal(feature.Vector{5, 0, 0, 0}, 1); got != 0 {
		t.Errorf("impossible vector: %f", got)
	}
	// Tiny database: rule of thumb must reject.
	if m.NormalApproxOK(feature.Vector{2, 1, 1, 2}) {
		t.Error("approximation accepted on a 4-vector database with a rare vector")
	}
}
