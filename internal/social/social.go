// Package social is a second, non-chemistry workload substrate: synthetic
// collaboration networks with role-labeled nodes (dev, ops, mgr, sec) and
// interaction-labeled edges (review, oncall). It exists to exercise
// GraphSig's general §II-A path — custom feature sets selected greedily
// rather than the built-in chemistry set — and to show that the mining
// core is domain-independent. A rare "incident triangle" (a security
// engineer on call with two ops engineers who are also on call together)
// can be planted into a minority of networks as the significant pattern
// to recover.
package social

import (
	"fmt"
	"math/rand"

	"graphsig/internal/feature"
	"graphsig/internal/graph"
)

// Role labels.
const (
	RoleDev graph.Label = iota
	RoleOps
	RoleMgr
	RoleSec
)

// Interaction (edge) labels.
const (
	EdgeReview graph.Label = iota
	EdgeOncall
)

// RoleNames maps role labels to display names.
var RoleNames = []string{"dev", "ops", "mgr", "sec"}

// EdgeName returns the display name of an interaction label.
func EdgeName(l graph.Label) string {
	if l == EdgeOncall {
		return "oncall"
	}
	return "review"
}

// Generator produces random collaboration networks deterministically.
type Generator struct {
	rng *rand.Rand
	// MinSize/MaxSize bound the network size (defaults 8..17).
	MinSize, MaxSize int
}

// NewGenerator returns a seeded Generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), MinSize: 8, MaxSize: 17}
}

// Network generates one random collaboration network: mostly devs with
// some ops and few managers/security, wired by a random review tree plus
// extra edges, with ~20% oncall edges.
func (g *Generator) Network() *graph.Graph {
	size := g.MinSize + g.rng.Intn(g.MaxSize-g.MinSize+1)
	net := graph.New(size, 2*size)
	for v := 0; v < size; v++ {
		x := g.rng.Float64()
		switch {
		case x < 0.6:
			net.AddNode(RoleDev)
		case x < 0.85:
			net.AddNode(RoleOps)
		case x < 0.95:
			net.AddNode(RoleMgr)
		default:
			net.AddNode(RoleSec)
		}
	}
	for v := 1; v < size; v++ {
		kind := EdgeReview
		if g.rng.Float64() < 0.2 {
			kind = EdgeOncall
		}
		net.MustAddEdge(g.rng.Intn(v), v, kind)
	}
	for e := 0; e < size/3; e++ {
		u, v := g.rng.Intn(size), g.rng.Intn(size)
		if u != v && !net.HasEdge(u, v) {
			net.MustAddEdge(u, v, EdgeReview)
		}
	}
	return net
}

// IncidentTriangle returns the planted significant pattern: a security
// engineer on call with two ops engineers who also share an oncall edge.
func IncidentTriangle() *graph.Graph {
	g := graph.New(3, 3)
	s := g.AddNode(RoleSec)
	o1 := g.AddNode(RoleOps)
	o2 := g.AddNode(RoleOps)
	g.MustAddEdge(s, o1, EdgeOncall)
	g.MustAddEdge(s, o2, EdgeOncall)
	g.MustAddEdge(o1, o2, EdgeOncall)
	return g
}

// Implant grafts an incident triangle onto net via one review edge.
func (g *Generator) Implant(net *graph.Graph) {
	base := net.NumNodes()
	tri := IncidentTriangle()
	for v := 0; v < tri.NumNodes(); v++ {
		net.AddNode(tri.NodeLabel(v))
	}
	for _, e := range tri.Edges() {
		net.MustAddEdge(base+e.From, base+e.To, e.Label)
	}
	if base > 0 {
		net.MustAddEdge(g.rng.Intn(base), base, EdgeReview)
	}
}

// Database generates n networks, planting the incident triangle into the
// first withPattern of them.
func (g *Generator) Database(n, withPattern int) []*graph.Graph {
	db := make([]*graph.Graph, n)
	for i := range db {
		net := g.Network()
		if i < withPattern {
			g.Implant(net)
		}
		net.ID = i
		db[i] = net
	}
	return db
}

// CandidateEdgeTypes enumerates the observed edge types of a database
// with relative frequency as importance — the candidate pool for the
// §II-A greedy feature selection.
func CandidateEdgeTypes(db []*graph.Graph) ([]feature.Candidate, []feature.EdgeType) {
	counts := map[feature.EdgeType]int{}
	total := 0
	for _, g := range db {
		for _, e := range g.Edges() {
			a, b := g.NodeLabel(e.From), g.NodeLabel(e.To)
			if a > b {
				a, b = b, a
			}
			counts[feature.EdgeType{A: a, B: b, Bond: e.Label}]++
			total++
		}
	}
	var cands []feature.Candidate
	var types []feature.EdgeType
	for t, c := range counts {
		tt := t
		tt.Name = fmt.Sprintf("%s-%s/%s", RoleNames[t.A], RoleNames[t.B], EdgeName(t.Bond))
		cands = append(cands, feature.Candidate{Name: tt.Name, Importance: float64(c) / float64(total)})
		types = append(types, tt)
	}
	return cands, types
}

// RoleOverlapSimilarity is a redundancy measure for greedy selection:
// edge types sharing endpoints describe overlapping structure.
func RoleOverlapSimilarity(types []feature.EdgeType) func(i, j int) float64 {
	return func(i, j int) float64 {
		shared := 0.0
		if types[i].A == types[j].A || types[i].A == types[j].B {
			shared += 0.5
		}
		if types[i].B == types[j].B || types[i].B == types[j].A {
			shared += 0.5
		}
		return shared
	}
}

// FeatureSet builds the §II-A custom feature set for a database: the k
// greedily selected edge types plus all role atom features.
func FeatureSet(db []*graph.Graph, k int, w1, w2 float64) *feature.Set {
	cands, types := CandidateEdgeTypes(db)
	selected := feature.GreedySelect(cands, k, w1, w2, RoleOverlapSimilarity(types))
	var chosen []feature.EdgeType
	for _, idx := range selected {
		chosen = append(chosen, types[idx])
	}
	return feature.NewCustomSet(chosen,
		[]graph.Label{RoleDev, RoleOps, RoleMgr, RoleSec}, RoleNames)
}
