package social

import (
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(1).Network()
	b := NewGenerator(1).Network()
	if a.String() != b.String() {
		t.Error("same seed differs")
	}
}

func TestNetworkShape(t *testing.T) {
	g := NewGenerator(2)
	for i := 0; i < 50; i++ {
		net := g.Network()
		if net.NumNodes() < 8 || net.NumNodes() > 17 {
			t.Fatalf("size %d out of range", net.NumNodes())
		}
		if !net.IsConnected() {
			t.Fatal("network disconnected")
		}
		for _, l := range net.Labels() {
			if l < RoleDev || l > RoleSec {
				t.Fatal("unknown role")
			}
		}
	}
}

func TestDatabasePlantsPattern(t *testing.T) {
	g := NewGenerator(3)
	db := g.Database(40, 6)
	tri := IncidentTriangle()
	for i, net := range db {
		has := isomorph.SubgraphIsomorphic(tri, net)
		if i < 6 && !has {
			t.Errorf("network %d missing planted triangle", i)
		}
	}
	// The triangle must stay rare overall.
	sup := isomorph.Support(tri, db)
	if sup < 6 || sup > 12 {
		t.Errorf("triangle support = %d of 40; want rare but present", sup)
	}
}

func TestFeatureSetSelection(t *testing.T) {
	db := NewGenerator(4).Database(60, 5)
	fs := FeatureSet(db, 5, 1.0, 0.3)
	if fs.Len() < 6 { // 5 edge types (some may dedup) + 4 roles, at least
		t.Fatalf("feature set too small: %d (%v)", fs.Len(), fs.Names())
	}
	if _, ok := fs.AtomFeature(RoleSec); !ok {
		t.Error("sec role feature missing")
	}
}

func TestGraphSigRecoversIncidentTriangle(t *testing.T) {
	db := NewGenerator(5).Database(250, 10)
	cfg := core.Defaults()
	cfg.FeatureSet = FeatureSet(db, 6, 1.0, 0.3)
	cfg.CutoffRadius = 2
	cfg.MinSupportFloor = 4
	res := core.Mine(db, cfg)
	if len(res.Subgraphs) == 0 {
		t.Fatal("nothing mined")
	}
	tri := IncidentTriangle()
	found := false
	for _, sg := range res.Subgraphs {
		if isomorph.SubgraphIsomorphic(tri, sg.Graph) || isomorph.Isomorphic(tri, sg.Graph) {
			found = true
			break
		}
	}
	if !found {
		for i, sg := range res.Subgraphs {
			if i < 5 {
				t.Logf("mined: %s p=%g", sg.Graph, sg.VectorPValue)
			}
		}
		t.Error("incident triangle not among significant subgraphs")
	}
}

func TestEdgeName(t *testing.T) {
	if EdgeName(EdgeOncall) != "oncall" || EdgeName(EdgeReview) != "review" {
		t.Error("edge names wrong")
	}
}

func TestImplantKeepsConnectivity(t *testing.T) {
	g := NewGenerator(6)
	net := g.Network()
	g.Implant(net)
	if !net.IsConnected() {
		t.Error("implant disconnected the network")
	}
	_ = graph.NoLabel
}
