package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"graphsig/internal/graph"
)

// Segment file layout. A segment is an immutable run of graphs:
//
//	8-byte magic "GSIGSEG1"
//	repeated frames: uint32 length | uint32 crc32(payload) | payload
//
// — the journal's framing discipline (little-endian, IEEE CRC over the
// payload), but with the opposite recovery policy: the journal repairs
// a torn tail because its tail is the one record legitimately cut off
// by a crash, while a segment is written, synced, and renamed into
// place as a whole, so any torn or CRC-failing frame means the file is
// damaged and the reader must refuse it rather than silently serve a
// truncated database.
//
// Each payload is one graph in a self-delimiting binary form:
//
//	varint id, uvarint numNodes, numNodes × varint label,
//	uvarint numEdges, numEdges × (uvarint from, uvarint to, varint label)
//
// Edges are stored in the graph's own edge order and replayed through
// AddEdge, which reproduces both the edge slice and the adjacency-list
// order — CutGraph's BFS order, and therefore mining output, depends
// on it.
const segmentMagic = "GSIGSEG1"

// maxFramePayload bounds a single decoded frame so a corrupt length
// field cannot ask the reader to allocate gigabytes.
const maxFramePayload = 64 << 20

// appendGraph serializes one graph onto buf.
func appendGraph(buf []byte, g *graph.Graph) []byte {
	buf = binary.AppendVarint(buf, int64(g.ID))
	buf = binary.AppendUvarint(buf, uint64(g.NumNodes()))
	for _, l := range g.Labels() {
		buf = binary.AppendVarint(buf, int64(l))
	}
	buf = binary.AppendUvarint(buf, uint64(g.NumEdges()))
	for _, e := range g.Edges() {
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
		buf = binary.AppendVarint(buf, int64(e.Label))
	}
	return buf
}

// decodeGraph rebuilds one graph from a frame payload. Every frame must
// be fully consumed: trailing bytes mean the payload was not written by
// this codec.
func decodeGraph(payload []byte) (*graph.Graph, error) {
	r := &varintReader{buf: payload}
	id := r.varint()
	numNodes := r.uvarint()
	if r.err == nil && numNodes > uint64(len(payload)) {
		// Each node costs at least one payload byte; anything larger is
		// a corrupt count, not a huge graph.
		return nil, fmt.Errorf("store: node count %d exceeds payload", numNodes)
	}
	g := graph.New(int(numNodes), 0)
	g.ID = int(id)
	for i := uint64(0); i < numNodes && r.err == nil; i++ {
		g.AddNode(graph.Label(r.varint()))
	}
	numEdges := r.uvarint()
	if r.err == nil && numEdges > uint64(len(payload)) {
		return nil, fmt.Errorf("store: edge count %d exceeds payload", numEdges)
	}
	for i := uint64(0); i < numEdges && r.err == nil; i++ {
		from := int(r.uvarint())
		to := int(r.uvarint())
		label := graph.Label(r.varint())
		if r.err != nil {
			break
		}
		if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() || from == to {
			return nil, fmt.Errorf("store: edge (%d,%d) out of range", from, to)
		}
		if err := g.AddEdge(from, to, label); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("store: %d trailing bytes after graph record", len(payload)-r.off)
	}
	// Decoded graphs are read-only from here on; freezing builds the CSR
	// once on the decode goroutine instead of lazily under mining load.
	return g.Freeze(), nil
}

// varintReader decodes varints off a byte slice, latching the first
// error so decode loops stay linear.
type varintReader struct {
	buf []byte
	off int
	err error
}

func (r *varintReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("store: truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *varintReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("store: truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// writeSegment writes graphs as one segment file at path, fsyncing
// before returning so a crash after Build/Append completes can never
// leave a manifest pointing at unwritten data. Returns the segment's
// own content fingerprint.
func writeSegment(path string, graphs []*graph.Graph) (fp string, err error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return "", fmt.Errorf("store: create segment: %w", err)
	}
	defer func() {
		if f != nil {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("store: close segment: %w", cerr)
			}
		}
	}()
	buf := make([]byte, 0, 64*1024)
	buf = append(buf, segmentMagic...)
	fpr := graph.NewFingerprinter()
	var payload []byte
	for _, g := range graphs {
		if g == nil {
			return "", fmt.Errorf("store: nil graph cannot be stored")
		}
		payload = appendGraph(payload[:0], g)
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, frame[:]...)
		buf = append(buf, payload...)
		fpr.Add(g)
	}
	if _, err := f.Write(buf); err != nil {
		return "", fmt.Errorf("store: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return "", fmt.Errorf("store: sync segment: %w", err)
	}
	closeErr := f.Close()
	f = nil
	if closeErr != nil {
		return "", fmt.Errorf("store: close segment: %w", closeErr)
	}
	return fpr.Sum(), nil
}

// readSegment loads and verifies one segment file: the magic, every
// frame's CRC, the graph count, and the segment content fingerprint
// recorded in the manifest. Any mismatch — including a torn tail — is
// an error; segments are immutable, so damage is never repaired in
// place.
func readSegment(path string, wantCount int, wantFP string) ([]*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read segment: %w", err)
	}
	return decodeSegment(data, wantCount, wantFP, path)
}

// decodeSegment is readSegment minus the file I/O (shared with the
// fuzz harness). wantCount < 0 skips the count check; wantFP == ""
// skips the fingerprint check.
func decodeSegment(data []byte, wantCount int, wantFP, name string) ([]*graph.Graph, error) {
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		return nil, fmt.Errorf("store: %s: bad segment magic", name)
	}
	data = data[len(segmentMagic):]
	var graphs []*graph.Graph
	fpr := graph.NewFingerprinter()
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("store: %s: torn frame header (%d bytes) — segment rejected: %w", name, len(data), io.ErrUnexpectedEOF)
		}
		length := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if length > maxFramePayload {
			return nil, fmt.Errorf("store: %s: frame length %d exceeds limit", name, length)
		}
		if uint64(len(data)-8) < uint64(length) {
			return nil, fmt.Errorf("store: %s: torn frame payload (want %d, have %d) — segment rejected: %w", name, length, len(data)-8, io.ErrUnexpectedEOF)
		}
		payload := data[8 : 8+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("store: %s: frame %d CRC mismatch — segment rejected", name, len(graphs))
		}
		g, err := decodeGraph(payload)
		if err != nil {
			return nil, fmt.Errorf("store: %s: frame %d: %w", name, len(graphs), err)
		}
		graphs = append(graphs, g)
		fpr.Add(g)
		data = data[8+length:]
	}
	if wantCount >= 0 && len(graphs) != wantCount {
		return nil, fmt.Errorf("store: %s: manifest says %d graphs, segment holds %d", name, wantCount, len(graphs))
	}
	if wantFP != "" && fpr.Sum() != wantFP {
		return nil, fmt.Errorf("store: %s: segment fingerprint mismatch", name)
	}
	return graphs, nil
}
