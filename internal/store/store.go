// Package store is the persistent on-disk database format: immutable
// binary graph segments plus a manifest that names them. It exists so
// a corpus larger than RAM is servable — the Reader loads segments
// lazily and keeps only a small LRU of decoded ones — and so the
// serving stack has a durable database identity: the manifest carries
// the whole-database fingerprint (the jobs cache key scope), a
// per-segment graph range and content fingerprint (load-time
// verification), and a monotonic generation number that incremental
// append bumps, which is what lets cache layers above distinguish "same
// directory, new data" from "same database".
//
// Durability discipline matches internal/journal: segment bytes are
// written, fsynced, and only then named by a manifest that is itself
// replaced atomically (temp file, fsync, rename, directory fsync). The
// recovery policy is the opposite of the journal's, deliberately:
// segments are immutable once named, so a torn tail or CRC mismatch is
// refused, never repaired — see segment.go.
package store

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"graphsig/internal/graph"
	"graphsig/internal/obs"
)

const (
	manifestName    = "manifest.json"
	manifestVersion = 1

	// DefaultSegmentGraphs is how many graphs Build packs per segment
	// when BuildOptions doesn't say: small enough that one segment's
	// decode is cheap, large enough that a million-graph corpus stays
	// in the thousands of files.
	DefaultSegmentGraphs = 256

	// DefaultCachedSegments is the Reader's decoded-segment LRU size
	// when Options doesn't say.
	DefaultCachedSegments = 4
)

// SegmentInfo is one manifest row: a segment file and the contiguous
// graph range it holds. Start indexes the database position (0-based),
// not graph IDs.
type SegmentInfo struct {
	File        string `json:"file"`
	Start       int    `json:"start"`
	Count       int    `json:"count"`
	Fingerprint string `json:"fingerprint"`
}

// Manifest is the store's root metadata, serialized as manifest.json.
type Manifest struct {
	Version    int   `json:"version"`
	Generation int64 `json:"generation"`
	Graphs     int   `json:"graphs"`
	Nodes      int64 `json:"nodes"`
	Edges      int64 `json:"edges"`
	// Fingerprint is graph.Fingerprint over the whole database in
	// segment order — the same value an in-memory load would compute.
	Fingerprint string `json:"fingerprint"`
	// FingerprintState is the database Fingerprinter's persisted
	// mid-state (base64), which is what lets Append extend the
	// fingerprint without re-reading every segment.
	FingerprintState string        `json:"fingerprintState"`
	Segments         []SegmentInfo `json:"segments"`
}

// BuildOptions tunes Build and Append.
type BuildOptions struct {
	// SegmentGraphs caps graphs per segment (DefaultSegmentGraphs when
	// zero or negative).
	SegmentGraphs int
}

func (o BuildOptions) segmentGraphs() int {
	if o.SegmentGraphs <= 0 {
		return DefaultSegmentGraphs
	}
	return o.SegmentGraphs
}

// Build writes db as a fresh store in dir, which must be empty of any
// prior manifest. Returns the manifest it wrote.
func Build(dir string, db []*graph.Graph, opts BuildOptions) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store (use Append)", dir)
	}
	m := &Manifest{Version: manifestVersion, Generation: 1}
	fpr := graph.NewFingerprinter()
	if err := appendSegments(dir, m, fpr, db, opts); err != nil {
		return nil, err
	}
	if err := finishManifest(dir, m, fpr); err != nil {
		return nil, err
	}
	return m, nil
}

// Append adds graphs to an existing store as new segments, extends the
// database fingerprint from its persisted mid-state, and bumps the
// generation. Existing segments are untouched — a reader holding the
// old manifest keeps working, and cache layers keyed on (fingerprint,
// generation) see a new database.
func Append(dir string, more []*graph.Graph, opts BuildOptions) (*Manifest, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	state, err := base64.StdEncoding.DecodeString(m.FingerprintState)
	if err != nil {
		return nil, fmt.Errorf("store: manifest fingerprint state: %w", err)
	}
	fpr, err := graph.UnmarshalFingerprinter(state)
	if err != nil {
		return nil, fmt.Errorf("store: manifest fingerprint state: %w", err)
	}
	// The resumed fold must reproduce the recorded fingerprint before we
	// extend it; otherwise the manifest is internally inconsistent.
	if got := fpr.Sum(); got != m.Fingerprint {
		return nil, fmt.Errorf("store: manifest fingerprint %s does not match its own state (%s)", m.Fingerprint, got)
	}
	if int(fpr.Count()) != m.Graphs {
		return nil, fmt.Errorf("store: manifest says %d graphs, fingerprint state says %d", m.Graphs, fpr.Count())
	}
	m.Generation++
	if err := appendSegments(dir, m, fpr, more, opts); err != nil {
		return nil, err
	}
	if err := finishManifest(dir, m, fpr); err != nil {
		return nil, err
	}
	return m, nil
}

// appendSegments writes db as one or more new segment files and folds
// them into the manifest and the database fingerprint.
func appendSegments(dir string, m *Manifest, fpr *graph.Fingerprinter, db []*graph.Graph, opts BuildOptions) error {
	per := opts.segmentGraphs()
	for off := 0; off < len(db); off += per {
		end := off + per
		if end > len(db) {
			end = len(db)
		}
		chunk := db[off:end]
		name := fmt.Sprintf("segment-%06d.seg", len(m.Segments))
		segFP, err := writeSegment(filepath.Join(dir, name), chunk)
		if err != nil {
			return err
		}
		m.Segments = append(m.Segments, SegmentInfo{
			File:        name,
			Start:       m.Graphs,
			Count:       len(chunk),
			Fingerprint: segFP,
		})
		for _, g := range chunk {
			fpr.Add(g)
			m.Nodes += int64(g.NumNodes())
			m.Edges += int64(g.NumEdges())
		}
		m.Graphs += len(chunk)
	}
	return nil
}

// finishManifest stamps the database fingerprint and its resumable
// state, then replaces manifest.json atomically. The directory is
// fsynced twice: once so the new segment files' directory entries are
// durable before any manifest names them, once after the rename.
func finishManifest(dir string, m *Manifest, fpr *graph.Fingerprinter) error {
	if err := syncDir(dir); err != nil {
		return err
	}
	m.Fingerprint = fpr.Sum()
	state, err := fpr.MarshalState()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	m.FingerprintState = base64.StdEncoding.EncodeToString(state)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, manifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: manifest temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		closeRemove(tmp, tmpName)
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		closeRemove(tmp, tmpName)
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		if rmErr := os.Remove(tmpName); rmErr != nil {
			return fmt.Errorf("store: close manifest: %w (and remove temp: %v)", err, rmErr)
		}
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, manifestName)); err != nil {
		if rmErr := os.Remove(tmpName); rmErr != nil {
			return fmt.Errorf("store: publish manifest: %w (and remove temp: %v)", err, rmErr)
		}
		return fmt.Errorf("store: publish manifest: %w", err)
	}
	return syncDir(dir)
}

// closeRemove tears down a failed temp file; the write/sync error that
// got us here is the one worth reporting, so these are best-effort but
// still observed to satisfy the durability lint and leave no litter.
func closeRemove(f *os.File, name string) {
	if err := f.Close(); err != nil {
		_ = os.Remove(name)
		return
	}
	_ = os.Remove(name)
}

// syncDir fsyncs a directory so renames and new entries in it are
// durable (same discipline as internal/journal).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("store: sync dir: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("store: close dir: %w", closeErr)
	}
	return nil
}

func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	return decodeManifest(data)
}

// decodeManifest parses and validates manifest bytes. It is the pure
// half of readManifest, split out so the untrusted-input path can be
// fuzzed without touching the filesystem: arbitrary bytes must either
// yield a tiling-consistent manifest or an error, never a panic.
func decodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d, want %d", m.Version, manifestVersion)
	}
	want := 0
	for _, s := range m.Segments {
		if s.Start != want {
			return nil, fmt.Errorf("store: segment %s starts at %d, want %d (ranges must tile)", s.File, s.Start, want)
		}
		if s.Count < 0 {
			return nil, fmt.Errorf("store: segment %s has negative count", s.File)
		}
		want += s.Count
	}
	if want != m.Graphs {
		return nil, fmt.Errorf("store: manifest says %d graphs, segments cover %d", m.Graphs, want)
	}
	return &m, nil
}

// Options tunes Open.
type Options struct {
	// CachedSegments caps how many decoded segments the Reader keeps in
	// memory (DefaultCachedSegments when zero or negative).
	CachedSegments int
	// Metrics, when non-nil, receives segment load / cache counters.
	Metrics *obs.Registry
}

// Reader serves graphs from a store directory, decoding segments on
// demand and keeping at most CachedSegments of them in memory — the
// lazy path that makes a larger-than-RAM corpus servable. Safe for
// concurrent use.
type Reader struct {
	dir      string
	manifest *Manifest
	cap      int

	loads  *obs.Counter
	hits   *obs.Counter
	misses *obs.Counter

	mu    sync.Mutex
	cache map[int][]*graph.Graph // segment index → decoded graphs
	lru   []int                  // segment indices, least recent first
}

// Open reads and validates the manifest in dir and returns a lazy
// Reader. No segment is decoded until a graph from it is requested.
func Open(dir string, opts Options) (*Reader, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	capacity := opts.CachedSegments
	if capacity <= 0 {
		capacity = DefaultCachedSegments
	}
	r := &Reader{
		dir:      dir,
		manifest: m,
		cap:      capacity,
		cache:    map[int][]*graph.Graph{},
	}
	if reg := opts.Metrics; reg != nil {
		r.loads = reg.Counter(obs.MStoreSegmentLoads)
		r.hits = reg.Counter(obs.MStoreSegmentCacheHits)
		r.misses = reg.Counter(obs.MStoreSegmentCacheMisses)
		reg.Gauge(obs.MStoreGeneration).Set(m.Generation)
		reg.Gauge(obs.MStoreSegments).Set(int64(len(m.Segments)))
	}
	return r, nil
}

// Len returns the number of graphs in the database.
func (r *Reader) Len() int { return r.manifest.Graphs }

// Generation returns the manifest's generation number.
func (r *Reader) Generation() int64 { return r.manifest.Generation }

// Fingerprint returns the whole-database content fingerprint.
func (r *Reader) Fingerprint() string { return r.manifest.Fingerprint }

// Manifest returns the manifest this reader was opened with. Callers
// must treat it as read-only.
func (r *Reader) Manifest() *Manifest { return r.manifest }

// Graph returns database position i, loading (and verifying) its
// segment if it is not cached.
func (r *Reader) Graph(i int) (*graph.Graph, error) {
	if i < 0 || i >= r.manifest.Graphs {
		return nil, fmt.Errorf("store: graph %d out of range [0,%d)", i, r.manifest.Graphs)
	}
	segs := r.manifest.Segments
	// Find the segment whose range holds i: the first with Start+Count > i.
	si := sort.Search(len(segs), func(k int) bool {
		return segs[k].Start+segs[k].Count > i
	})
	graphs, err := r.segment(si)
	if err != nil {
		return nil, err
	}
	return graphs[i-segs[si].Start], nil
}

// Graphs materializes the whole database in order — the eager path, for
// callers that need every graph resident anyway (index builds, small
// corpora). It streams segment by segment through the cache, so peak
// extra memory beyond the result is one segment.
func (r *Reader) Graphs() ([]*graph.Graph, error) {
	out := make([]*graph.Graph, 0, r.manifest.Graphs)
	for si := range r.manifest.Segments {
		graphs, err := r.segment(si)
		if err != nil {
			return nil, err
		}
		out = append(out, graphs...)
	}
	return out, nil
}

// segment returns segment si's decoded graphs, consulting the LRU.
func (r *Reader) segment(si int) ([]*graph.Graph, error) {
	r.mu.Lock()
	if graphs, ok := r.cache[si]; ok {
		r.touch(si)
		r.mu.Unlock()
		r.hits.Inc()
		return graphs, nil
	}
	r.mu.Unlock()
	r.misses.Inc()

	info := r.manifest.Segments[si]
	graphs, err := readSegment(filepath.Join(r.dir, info.File), info.Count, info.Fingerprint)
	if err != nil {
		return nil, err
	}
	r.loads.Inc()

	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.cache[si]; ok {
		// Another goroutine decoded it concurrently; keep theirs so all
		// callers share one copy.
		r.touch(si)
		return prior, nil
	}
	r.cache[si] = graphs
	r.lru = append(r.lru, si)
	for len(r.cache) > r.cap {
		evict := r.lru[0]
		r.lru = r.lru[1:]
		delete(r.cache, evict)
	}
	return graphs, nil
}

// touch moves si to the most-recent end of the LRU. Caller holds mu.
func (r *Reader) touch(si int) {
	for k, v := range r.lru {
		if v == si {
			r.lru = append(append(r.lru[:k:k], r.lru[k+1:]...), si)
			return
		}
	}
}
