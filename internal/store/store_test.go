package store

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/obs"
)

func testDB(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	gen := chem.NewGenerator(42)
	db := make([]*graph.Graph, n)
	for i := range db {
		db[i] = gen.Molecule()
		db[i].ID = i
	}
	return db
}

func sameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.ID != want.ID {
		t.Fatalf("ID = %d, want %d", got.ID, want.ID)
	}
	// Structural identity including adjacency order: the fingerprint
	// covers labels and edge order, which is exactly what mining
	// determinism depends on.
	if graph.Fingerprint([]*graph.Graph{got}) != graph.Fingerprint([]*graph.Graph{want}) {
		t.Fatalf("graph %d decoded differently", want.ID)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	db := testDB(t, 20)
	dir := t.TempDir()
	m, err := Build(dir, db, BuildOptions{SegmentGraphs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Graphs != 20 || len(m.Segments) != 3 {
		t.Fatalf("manifest: %d graphs in %d segments, want 20 in 3", m.Graphs, len(m.Segments))
	}
	if m.Fingerprint != graph.Fingerprint(db) {
		t.Fatal("manifest fingerprint differs from in-memory fingerprint")
	}
	reg := obs.NewRegistry()
	r, err := Open(dir, Options{CachedSegments: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 20 || r.Generation() != 1 || r.Fingerprint() != m.Fingerprint {
		t.Fatalf("reader shape: len=%d gen=%d", r.Len(), r.Generation())
	}
	// Random-access everything twice; with a 2-segment LRU over 3
	// segments this forces evictions and re-loads.
	for pass := 0; pass < 2; pass++ {
		for i, want := range db {
			got, err := r.Graph(i)
			if err != nil {
				t.Fatalf("Graph(%d): %v", i, err)
			}
			sameGraph(t, got, want)
		}
	}
	if reg.Counter(obs.MStoreSegmentLoads).Value() <= 3 {
		t.Fatalf("expected eviction-driven re-loads, got %d loads", reg.Counter(obs.MStoreSegmentLoads).Value())
	}
	if reg.Counter(obs.MStoreSegmentCacheHits).Value() == 0 {
		t.Fatal("expected cache hits")
	}
	all, err := r.Graphs()
	if err != nil {
		t.Fatal(err)
	}
	if graph.Fingerprint(all) != graph.Fingerprint(db) {
		t.Fatal("eager Graphs() differs from original database")
	}
	if _, err := r.Graph(20); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := r.Graph(-1); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestStoreAppend(t *testing.T) {
	db := testDB(t, 25)
	dir := t.TempDir()
	if _, err := Build(dir, db[:15], BuildOptions{SegmentGraphs: 6}); err != nil {
		t.Fatal(err)
	}
	m, err := Append(dir, db[15:], BuildOptions{SegmentGraphs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != 2 {
		t.Fatalf("generation = %d, want 2 after one append", m.Generation)
	}
	// The appended store's fingerprint equals the one-shot fingerprint
	// of the whole database — the property that keeps cache keys from a
	// full rebuild and an incremental append interchangeable.
	if m.Fingerprint != graph.Fingerprint(db) {
		t.Fatal("appended fingerprint differs from whole-database fingerprint")
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range db {
		got, err := r.Graph(i)
		if err != nil {
			t.Fatalf("Graph(%d): %v", i, err)
		}
		sameGraph(t, got, want)
	}
	// A second Build into a populated dir must refuse.
	if _, err := Build(dir, db, BuildOptions{}); err == nil {
		t.Fatal("Build over an existing store accepted")
	}
}

// TestSegmentGolden pins the on-disk byte format: a fixed two-graph
// segment must encode to exactly these bytes. If this test breaks, the
// format changed and existing stores on disk will not load — bump the
// magic instead.
func TestSegmentGolden(t *testing.T) {
	g1 := graph.New(3, 2)
	g1.ID = 7
	g1.AddNode(0)
	g1.AddNode(1)
	g1.AddNode(2)
	g1.MustAddEdge(0, 1, 0)
	g1.MustAddEdge(1, 2, 1)
	g2 := graph.New(1, 0)
	g2.ID = -1 // negative IDs survive (varint, not uvarint)
	g2.AddNode(5)

	dir := t.TempDir()
	path := filepath.Join(dir, "g.seg")
	if _, err := writeSegment(path, []*graph.Graph{g1, g2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const want = "4753494753454731" + // "GSIGSEG1"
		"0c000000" + "0c04bfd6" + // frame 1: len 12, crc32
		"0e" + "03" + "000204" + "02" + "000100" + "010202" + // g1: id 7, labels, edges
		"04000000" + "c43ad562" + // frame 2: len 4, crc32
		"01" + "01" + "0a" + "00" // g2: id -1, one node, no edges
	if got := hex.EncodeToString(data); got != want {
		t.Fatalf("segment bytes changed:\n got %s\nwant %s", got, want)
	}
	graphs, err := readSegment(path, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, graphs[0], g1)
	sameGraph(t, graphs[1], g2)
	if graphs[1].ID != -1 {
		t.Fatalf("negative ID lost: %d", graphs[1].ID)
	}
}

// TestSegmentRejectsDamage: unlike the journal, a damaged segment is
// refused outright — torn tails included — because segments are
// written whole and fsynced before the manifest names them.
func TestSegmentRejectsDamage(t *testing.T) {
	db := testDB(t, 8)
	dir := t.TempDir()
	if _, err := Build(dir, db, BuildOptions{SegmentGraphs: 8}); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "segment-000000.seg")
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func([]byte) []byte{
		"torn tail":       func(b []byte) []byte { return b[:len(b)-3] },
		"torn mid-header": func(b []byte) []byte { return b[:len(segmentMagic)+5] },
		"flipped payload": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"flipped crc":     func(b []byte) []byte { b[len(segmentMagic)+4] ^= 0xff; return b },
		"bad magic":       func(b []byte) []byte { b[0] = 'X'; return b },
		"oversized length": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(segmentMagic):], maxFramePayload+1)
			return b
		},
		"truncated empty": func(b []byte) []byte { return b[:3] },
	}
	for name, mutate := range damage {
		corrupt := mutate(append([]byte(nil), pristine...))
		if err := os.WriteFile(seg, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("%s: Open should succeed (lazy), got %v", name, err)
		}
		if _, err := r.Graph(0); err == nil {
			t.Errorf("%s: damaged segment served", name)
		}
	}

	// Wrong count and wrong fingerprint in the manifest are also refused.
	if err := os.WriteFile(seg, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSegment(seg, 7, ""); err == nil || !strings.Contains(err.Error(), "manifest says") {
		t.Errorf("count mismatch not refused: %v", err)
	}
	if _, err := readSegment(seg, 8, "deadbeef"); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Errorf("fingerprint mismatch not refused: %v", err)
	}
}

func TestManifestValidation(t *testing.T) {
	db := testDB(t, 10)
	dir := t.TempDir()
	if _, err := Build(dir, db, BuildOptions{SegmentGraphs: 5}); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, manifestName)
	pristine, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for name, mangled := range map[string]string{
		"not json":        "{",
		"wrong version":   strings.Replace(string(pristine), `"version": 1`, `"version": 99`, 1),
		"range gap":       strings.Replace(string(pristine), `"start": 5`, `"start": 6`, 1),
		"count mismatch":  strings.Replace(string(pristine), `"graphs": 10`, `"graphs": 11`, 1),
		"bad state":       strings.Replace(string(pristine), `"fingerprintState": "`, `"fingerprintState": "!!!`, 1),
		"state fp drift":  strings.Replace(string(pristine), `"fingerprint": "`, `"fingerprint": "00`, 1),
		"state n mangled": strings.Replace(string(pristine), `"graphs": 10`, `"graphs": 10, "x": 0`, 1),
	} {
		if err := os.WriteFile(manifest, []byte(mangled), 0o644); err != nil {
			t.Fatal(err)
		}
		switch name {
		case "bad state", "state fp drift":
			// These pass Open (lazy readers never touch the fold state)
			// but must refuse Append.
			if _, err := Append(dir, db[:1], BuildOptions{}); err == nil {
				t.Errorf("%s: Append accepted inconsistent manifest", name)
			}
		case "state n mangled":
			// Harmless extra JSON field: still opens.
			if _, err := Open(dir, Options{}); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		default:
			if _, err := Open(dir, Options{}); err == nil {
				t.Errorf("%s: accepted", name)
			}
		}
	}
}

// FuzzDecodeSegment hammers the untrusted-input path: arbitrary bytes
// must either decode cleanly or return an error — never panic, never
// allocate absurdly.
func FuzzDecodeSegment(f *testing.F) {
	// Seed corpus: a valid segment, its prefixes, and light mutations.
	g := graph.New(2, 1)
	g.ID = 1
	g.AddNode(0)
	g.AddNode(1)
	g.MustAddEdge(0, 1, 0)
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.seg")
	if _, err := writeSegment(path, []*graph.Graph{g, g}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(segmentMagic)+4])
	f.Add([]byte(segmentMagic))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		graphs, err := decodeSegment(data, -1, "", "fuzz")
		if err == nil {
			// Whatever decoded must re-encode to a loadable segment.
			for _, g := range graphs {
				if g == nil {
					t.Fatal("decoded nil graph without error")
				}
			}
		}
	})
}

// FuzzManifestJSON hammers the other untrusted-input surface: the
// manifest decoder. Arbitrary bytes must either produce a manifest
// whose segment ranges tile, or an error — never a panic. Accepted
// manifests must also survive a marshal/decode round trip unchanged
// in the fields the Reader depends on.
func FuzzManifestJSON(f *testing.F) {
	dir := f.TempDir()
	db := make([]*graph.Graph, 6)
	gen := chem.NewGenerator(7)
	for i := range db {
		db[i] = gen.Molecule()
		db[i].ID = i
	}
	if _, err := Build(dir, db, BuildOptions{SegmentGraphs: 2}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"graphs":2,"segments":[{"file":"a","start":0,"count":2}]}`))
	f.Add([]byte(`{"version":1,"graphs":2,"segments":[{"file":"a","start":1,"count":1}]}`))
	f.Add([]byte(`{"version":1,"graphs":-1,"segments":[{"file":"a","start":0,"count":-1}]}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		covered := 0
		for _, s := range m.Segments {
			if s.Start != covered || s.Count < 0 {
				t.Fatalf("accepted non-tiling segments: %+v", m.Segments)
			}
			covered += s.Count
		}
		if covered != m.Graphs {
			t.Fatalf("accepted manifest claiming %d graphs over %d covered", m.Graphs, covered)
		}
		re, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal accepted manifest: %v", err)
		}
		m2, err := decodeManifest(re)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if m2.Version != m.Version || m2.Generation != m.Generation ||
			m2.Graphs != m.Graphs || m2.Fingerprint != m.Fingerprint ||
			len(m2.Segments) != len(m.Segments) {
			t.Fatalf("round trip changed manifest: %+v vs %+v", m, m2)
		}
	})
}
