// Package svm provides the two support-vector machines used by the
// classification baselines (LIBSVM substitute, see DESIGN.md): a linear
// SVM trained with the Pegasos stochastic subgradient method for the
// pattern-feature classifier, and a kernel SVM trained with a simplified
// SMO over a precomputed kernel matrix for the optimal-assignment kernel
// classifier.
package svm

import (
	"math"
	"math/rand"
)

// Linear is a linear SVM. Train with TrainLinear.
type Linear struct {
	// W are the learned weights; Bias the learned intercept.
	W    []float64
	Bias float64
}

// LinearOptions configures Pegasos training.
type LinearOptions struct {
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 40).
	Epochs int
	// Seed drives the sampling order.
	Seed int64
}

// TrainLinear fits a linear SVM on feature vectors x with labels y
// (true = positive class) using the Pegasos projected stochastic
// subgradient method. A constant bias feature is handled internally.
func TrainLinear(x [][]float64, y []bool, opt LinearOptions) *Linear {
	if len(x) == 0 {
		return &Linear{}
	}
	if opt.Lambda <= 0 {
		opt.Lambda = 1e-3
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 40
	}
	dim := len(x[0])
	w := make([]float64, dim)
	bias := 0.0
	rng := rand.New(rand.NewSource(opt.Seed))
	t := 0
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		order := rng.Perm(len(x))
		for _, i := range order {
			t++
			eta := 1 / (opt.Lambda * float64(t))
			yi := -1.0
			if y[i] {
				yi = 1
			}
			margin := yi * (dot(w, x[i]) + bias)
			for d := range w {
				w[d] *= 1 - eta*opt.Lambda
			}
			if margin < 1 {
				for d := range w {
					w[d] += eta * yi * x[i][d]
				}
				bias += eta * yi
			}
			// Project onto the 1/sqrt(lambda) ball.
			norm := math.Sqrt(dot(w, w))
			bound := 1 / math.Sqrt(opt.Lambda)
			if norm > bound {
				scale := bound / norm
				for d := range w {
					w[d] *= scale
				}
			}
		}
	}
	return &Linear{W: w, Bias: bias}
}

// Decision returns the signed decision value for a feature vector.
func (l *Linear) Decision(x []float64) float64 {
	if len(l.W) == 0 {
		return 0
	}
	return dot(l.W, x) + l.Bias
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Kernel is a kernel SVM trained on a precomputed kernel matrix.
type Kernel struct {
	// Alpha are the per-example dual coefficients (alpha_i * y_i).
	Alpha []float64
	Bias  float64
}

// KernelOptions configures the simplified SMO trainer.
type KernelOptions struct {
	// C is the box constraint (default 1).
	C float64
	// Tol is the KKT tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of consecutive alpha-stable passes before
	// stopping (default 5); MaxIter caps total passes (default 200).
	MaxPasses int
	MaxIter   int
	// Seed drives partner selection.
	Seed int64
}

// TrainKernel fits a C-SVC on a precomputed symmetric kernel matrix k
// (k[i][j] = K(x_i, x_j)) with labels y, using Platt's simplified SMO.
func TrainKernel(k [][]float64, y []bool, opt KernelOptions) *Kernel {
	n := len(k)
	if n == 0 {
		return &Kernel{}
	}
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-3
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 5
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	ys := make([]float64, n)
	for i, v := range y {
		if v {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	alpha := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(opt.Seed))

	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * ys[j] * k[j][i]
			}
		}
		return s
	}

	passes, iter := 0, 0
	for passes < opt.MaxPasses && iter < opt.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - ys[i]
			if (ys[i]*ei < -opt.Tol && alpha[i] < opt.C) || (ys[i]*ei > opt.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - ys[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if ys[i] != ys[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(opt.C, opt.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-opt.C)
					hi = math.Min(opt.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*k[i][j] - k[i][i] - k[j][j]
				if eta >= 0 {
					continue
				}
				alpha[j] = aj - ys[j]*(ei-ej)/eta
				if alpha[j] > hi {
					alpha[j] = hi
				}
				if alpha[j] < lo {
					alpha[j] = lo
				}
				if math.Abs(alpha[j]-aj) < 1e-7 {
					alpha[j] = aj
					continue
				}
				alpha[i] = ai + ys[i]*ys[j]*(aj-alpha[j])
				b1 := b - ei - ys[i]*(alpha[i]-ai)*k[i][i] - ys[j]*(alpha[j]-aj)*k[i][j]
				b2 := b - ej - ys[i]*(alpha[i]-ai)*k[i][j] - ys[j]*(alpha[j]-aj)*k[j][j]
				switch {
				case alpha[i] > 0 && alpha[i] < opt.C:
					b = b1
				case alpha[j] > 0 && alpha[j] < opt.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iter++
	}
	return &Kernel{Alpha: alpha, Bias: b}
}

// Decision returns the decision value for a test point given its kernel
// row against the training set and the training labels.
func (m *Kernel) Decision(kernelRow []float64, y []bool) float64 {
	s := m.Bias
	for i, a := range m.Alpha {
		if a == 0 {
			continue
		}
		yi := -1.0
		if y[i] {
			yi = 1
		}
		s += a * yi * kernelRow[i]
	}
	return s
}
