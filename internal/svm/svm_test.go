package svm

import (
	"math"
	"math/rand"
	"testing"

	"graphsig/internal/metrics"
)

// separable2D builds a linearly separable 2D dataset.
func separable2D(r *rand.Rand, n int) (x [][]float64, y []bool) {
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		cx, cy := -2.0, -2.0
		if pos {
			cx, cy = 2.0, 2.0
		}
		x = append(x, []float64{cx + r.NormFloat64()*0.5, cy + r.NormFloat64()*0.5})
		y = append(y, pos)
	}
	return x, y
}

func TestLinearSeparable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x, y := separable2D(r, 80)
	m := TrainLinear(x, y, LinearOptions{Seed: 1})
	correct := 0
	for i := range x {
		if (m.Decision(x[i]) > 0) == y[i] {
			correct++
		}
	}
	if correct < 78 {
		t.Errorf("accuracy %d/80 on separable data", correct)
	}
}

func TestLinearAUC(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x, y := separable2D(r, 60)
	m := TrainLinear(x, y, LinearOptions{Seed: 2})
	scores := make([]float64, len(x))
	for i := range x {
		scores[i] = m.Decision(x[i])
	}
	if auc := metrics.AUC(scores, y); auc < 0.99 {
		t.Errorf("AUC = %f on separable data", auc)
	}
}

func TestLinearDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x, y := separable2D(r, 40)
	a := TrainLinear(x, y, LinearOptions{Seed: 7})
	b := TrainLinear(x, y, LinearOptions{Seed: 7})
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("training not deterministic")
		}
	}
	if a.Bias != b.Bias {
		t.Fatal("bias differs")
	}
}

func TestLinearEmpty(t *testing.T) {
	m := TrainLinear(nil, nil, LinearOptions{})
	if m.Decision([]float64{1, 2}) != 0 {
		t.Error("empty model should return 0")
	}
}

// xorKernel builds the XOR dataset with an RBF-like precomputed kernel,
// which a linear model cannot separate but a kernel SVM can.
func xorData() (pts [][]float64, y []bool) {
	base := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	lab := []bool{false, true, true, false}
	r := rand.New(rand.NewSource(4))
	for rep := 0; rep < 10; rep++ {
		for i, b := range base {
			pts = append(pts, []float64{b[0] + r.NormFloat64()*0.05, b[1] + r.NormFloat64()*0.05})
			y = append(y, lab[i])
		}
	}
	return pts, y
}

func rbf(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-3 * d)
}

func TestKernelXOR(t *testing.T) {
	pts, y := xorData()
	n := len(pts)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = rbf(pts[i], pts[j])
		}
	}
	m := TrainKernel(k, y, KernelOptions{C: 10, Seed: 5})
	correct := 0
	for i := 0; i < n; i++ {
		if (m.Decision(k[i], y) > 0) == y[i] {
			correct++
		}
	}
	if correct < n-2 {
		t.Errorf("kernel SVM got %d/%d on XOR", correct, n)
	}
}

func TestKernelEmpty(t *testing.T) {
	m := TrainKernel(nil, nil, KernelOptions{})
	if m.Decision(nil, nil) != 0 {
		t.Error("empty kernel model should return 0")
	}
}

func TestKernelAlphasBoxed(t *testing.T) {
	pts, y := xorData()
	n := len(pts)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = rbf(pts[i], pts[j])
		}
	}
	const c = 2.5
	m := TrainKernel(k, y, KernelOptions{C: c, Seed: 6})
	for i, a := range m.Alpha {
		if a < -1e-9 || a > c+1e-9 {
			t.Errorf("alpha[%d] = %f outside [0, %f]", i, a, c)
		}
	}
}
