// Package textchart renders small scatter/line charts and aligned
// tables as text, so that cmd/experiments can draw the paper's figures
// (runtime-vs-threshold curves, the p-value/frequency scatter) and the
// mining commands can print per-stage metric tables directly in the
// terminal. Rendering is deterministic: fixed input produces identical
// output.
package textchart

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one chart point. DNF points (runs that exceeded their budget)
// are drawn pinned to the top of the plot with a '^' marker.
type Point struct {
	X, Y float64
	DNF  bool
}

// Series is a named point set; each series gets its own marker rune.
type Series struct {
	Name   string
	Points []Point
}

// Options controls the canvas.
type Options struct {
	// Width and Height are the plot area size in characters
	// (defaults 60×16).
	Width, Height int
	// LogY/LogX use log10 scales (nonpositive values are clamped to the
	// smallest positive value present).
	LogY, LogX bool
	// XLabel/YLabel annotate the axes.
	XLabel, YLabel string
}

var markers = []rune{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart to w.
func Render(w io.Writer, title string, series []Series, opt Options) {
	if opt.Width <= 0 {
		opt.Width = 60
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	xs, ys := collect(series, opt)
	if len(xs) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	xMin, xMax := minMax(xs)
	yMin, yMax := minMax(ys)
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]rune, opt.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		marker := markers[si%len(markers)]
		for _, p := range s.Points {
			col := scaleTo(tx(p.X, opt), xMin, xMax, opt.Width-1)
			var row int
			if p.DNF {
				row = 0
			} else {
				row = opt.Height - 1 - scaleTo(ty(p.Y, opt, ys), yMin, yMax, opt.Height-1)
			}
			m := marker
			if p.DNF {
				m = '^'
			}
			if grid[row][col] != ' ' && grid[row][col] != m {
				grid[row][col] = '&' // overlapping series
			} else {
				grid[row][col] = m
			}
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	yTop := label(yMax, opt.LogY)
	yBot := label(yMin, opt.LogY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, row := range grid {
		prefix := strings.Repeat(" ", pad)
		switch r {
		case 0:
			prefix = fmt.Sprintf("%*s", pad, yTop)
		case opt.Height - 1:
			prefix = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", prefix, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", opt.Width))
	fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", pad), opt.Width-len(label(xMax, opt.LogX)), label(xMin, opt.LogX), label(xMax, opt.LogX))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(w, "  x: %s   y: %s   (^ = DNF)\n", opt.XLabel, opt.YLabel)
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(legend, "  "))
}

// Table renders rows as an aligned text table under a title. The first
// column is left-aligned (row labels); every other column is
// right-aligned (numbers). Rows shorter than the header are padded with
// empty cells; longer rows are truncated to the header width.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	if len(headers) == 0 {
		return
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(headers))
		for c := range headers {
			if c < len(row) {
				cells[r][c] = row[c]
			}
			if len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	writeRow := func(row []string) {
		for c, cell := range row {
			if c > 0 {
				fmt.Fprint(w, "  ")
			}
			if c == 0 {
				fmt.Fprintf(w, "%-*s", widths[c], cell)
			} else {
				fmt.Fprintf(w, "%*s", widths[c], cell)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(headers)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total+2*(len(headers)-1)))
	for _, row := range cells {
		writeRow(row)
	}
}

// collect gathers transformed coordinates; DNF points contribute X only.
func collect(series []Series, opt Options) (xs, ys []float64) {
	for _, s := range series {
		for _, p := range s.Points {
			xs = append(xs, tx(p.X, opt))
			if !p.DNF {
				ys = append(ys, tyRaw(p.Y, opt))
			}
		}
	}
	return xs, ys
}

func tx(x float64, opt Options) float64 {
	if opt.LogX {
		return safeLog(x)
	}
	return x
}

func tyRaw(y float64, opt Options) float64 {
	if opt.LogY {
		return safeLog(y)
	}
	return y
}

func ty(y float64, opt Options, population []float64) float64 {
	v := tyRaw(y, opt)
	// Clamp into the observed range so DNF-free series stay in frame.
	lo, hi := minMax(population)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func safeLog(v float64) float64 {
	if v <= 0 {
		return -18 // sentinel floor for log scales
	}
	return math.Log10(v)
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	return lo, hi
}

func scaleTo(v, lo, hi float64, max int) int {
	if hi == lo {
		return 0
	}
	p := (v - lo) / (hi - lo)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return int(math.Round(p * float64(max)))
}

func label(v float64, logScale bool) string {
	if logScale {
		return fmt.Sprintf("1e%.0f", v)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
