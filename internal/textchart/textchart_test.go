package textchart

import (
	"strings"
	"testing"
)

func render(series []Series, opt Options) string {
	var sb strings.Builder
	Render(&sb, "test chart", series, opt)
	return sb.String()
}

func TestRenderBasic(t *testing.T) {
	out := render([]Series{
		{Name: "a", Points: []Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}},
		{Name: "b", Points: []Point{{X: 1, Y: 3}, {X: 3, Y: 1}}},
	}, Options{Width: 20, Height: 8, XLabel: "x", YLabel: "y"})
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Error("axis labels missing")
	}
}

func TestRenderDeterministic(t *testing.T) {
	series := []Series{{Name: "s", Points: []Point{{X: 0, Y: 5}, {X: 10, Y: 1}}}}
	a := render(series, Options{})
	b := render(series, Options{})
	if a != b {
		t.Error("render not deterministic")
	}
}

func TestRenderDNFPinnedToTop(t *testing.T) {
	out := render([]Series{
		{Name: "m", Points: []Point{{X: 1, Y: 1}, {X: 2, DNF: true}}},
	}, Options{Width: 10, Height: 5})
	lines := strings.Split(out, "\n")
	// The first plot row (index 1, after title) must contain the '^'.
	if !strings.Contains(lines[1], "^") {
		t.Errorf("DNF marker not on top row:\n%s", out)
	}
}

func TestRenderLogScale(t *testing.T) {
	out := render([]Series{
		{Name: "t", Points: []Point{{X: 1, Y: 0.001}, {X: 10, Y: 100}}},
	}, Options{Width: 30, Height: 8, LogY: true})
	if !strings.Contains(out, "1e2") || !strings.Contains(out, "1e-3") {
		t.Errorf("log labels missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(nil, Options{})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
	out = render([]Series{{Name: "x"}}, Options{})
	if !strings.Contains(out, "no data") {
		t.Errorf("pointless chart output: %q", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := render([]Series{{Name: "p", Points: []Point{{X: 5, Y: 5}}}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Errorf("single point missing:\n%s", out)
	}
}

func TestOverlapMarker(t *testing.T) {
	out := render([]Series{
		{Name: "a", Points: []Point{{X: 1, Y: 1}}},
		{Name: "b", Points: []Point{{X: 1, Y: 1}}},
	}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "&") {
		t.Errorf("overlap marker missing:\n%s", out)
	}
}

func TestNonpositiveOnLogScale(t *testing.T) {
	// p-value 0 on a log axis must not panic and lands at the floor.
	out := render([]Series{
		{Name: "p", Points: []Point{{X: 1, Y: 0}, {X: 2, Y: 0.5}}},
	}, Options{Width: 12, Height: 5, LogY: true})
	if out == "" {
		t.Error("no output")
	}
}

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, "t", []string{"stage", "n", "time"}, [][]string{
		{"rwr", "12", "1.5s"},
		{"group-mine", "3"},                // short row: padded
		{"verify", "100", "20ms", "extra"}, // long row: truncated
	})
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "t" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "stage") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	// All rows share one width, so columns align.
	for _, ln := range lines[3:] {
		if len(ln) > len(lines[2]) {
			t.Errorf("row wider than rule: %q", ln)
		}
	}
	if strings.Contains(out, "extra") {
		t.Error("over-wide row not truncated to the header width")
	}
	// Numbers right-aligned: "12" and "3" end at the same column.
	r1 := strings.Index(lines[3], "12")
	r2 := strings.Index(lines[4], " 3")
	if r1 < 0 || r2 < 0 || r1+2 != r2+2 && lines[3][r1+1] != lines[4][r2+1] {
		t.Errorf("numeric column misaligned:\n%s", out)
	}
}

func TestTableEmptyHeaders(t *testing.T) {
	var b strings.Builder
	Table(&b, "t", nil, [][]string{{"x"}})
	if b.Len() != 0 {
		t.Errorf("headerless table rendered %q", b.String())
	}
}
